package staging

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"
	"runtime"
	"sync/atomic"
	"testing"

	"crosslayer/internal/field"
	"crosslayer/internal/grid"
)

// allocatedBytes reports cumulative heap allocation — deltas measure how
// much a code path allocated regardless of intervening GCs.
func allocatedBytes() int64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.TotalAlloc)
}

// encodeForSeed serializes a small valid block for the fuzz corpora.
func encodeForSeed(t interface{ Fatal(...any) }, lo grid.IntVect, n, ncomp int, val float64) []byte {
	box := grid.NewBox(lo, grid.IV(lo.X+n-1, lo.Y+n-1, lo.Z+n-1))
	d := field.New(box, ncomp)
	for c := 0; c < ncomp; c++ {
		comp := d.Comp(c)
		for i := range comp {
			comp[i] = val + float64(c)*0.5 + float64(i)*0.001
		}
	}
	var buf bytes.Buffer
	if err := EncodeBlock(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzDecodeBlock feeds arbitrary bytes to the block decoder. The decoder
// must never panic and never allocate far beyond the input it was given;
// when it does accept an input, re-encoding must reproduce an identical
// block (decode∘encode is the identity on the decoder's accepted set).
func FuzzDecodeBlock(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeForSeed(f, grid.IV(0, 0, 0), 2, 1, 1.25))
	f.Add(encodeForSeed(f, grid.IV(-3, 4, 7), 3, 2, -0.5))
	// A truthful magic with a hostile header claiming a huge box.
	hostile := make([]byte, 32)
	binary.LittleEndian.PutUint32(hostile[0:], blockMagic)
	binary.LittleEndian.PutUint32(hostile[16:], uint32(int32(1<<24)))
	binary.LittleEndian.PutUint32(hostile[20:], uint32(int32(1<<24)))
	binary.LittleEndian.PutUint32(hostile[24:], uint32(int32(1<<24)))
	binary.LittleEndian.PutUint32(hostile[28:], 64)
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeBlock(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panicking or hanging is not
		}
		var buf bytes.Buffer
		if err := EncodeBlock(&buf, d); err != nil {
			t.Fatalf("decoded block failed to re-encode: %v", err)
		}
		d2, err := DecodeBlock(&buf)
		if err != nil {
			t.Fatalf("re-encoded block failed to decode: %v", err)
		}
		if !d.Equal(d2) {
			t.Fatalf("decode/encode round trip not identity: %v vs %v", d.Box, d2.Box)
		}
	})
}

// FuzzReadRequest feeds arbitrary bytes to the server's request loop: a
// hostile or corrupt client must never panic the server or make it
// allocate beyond what the stream carries. The response sink is discarded;
// only survival is asserted.
func FuzzReadRequest(f *testing.F) {
	// A valid put request as a seed: header + encoded block.
	var put bytes.Buffer
	put.WriteByte(opPut)
	name := "analysis"
	var hdr [2]byte
	binary.LittleEndian.PutUint16(hdr[:], uint16(len(name)))
	put.Write(hdr[:])
	put.WriteString(name)
	var ver [4]byte
	binary.LittleEndian.PutUint32(ver[:], 3)
	put.Write(ver[:])
	put.Write(make([]byte, 8)) // put sequence number
	put.Write(encodeForSeed(f, grid.IV(0, 0, 0), 2, 1, 2.5))
	f.Add(put.Bytes())

	// A valid get request.
	var get bytes.Buffer
	get.WriteByte(opGet)
	get.Write(hdr[:])
	get.WriteString(name)
	get.Write(ver[:])
	get.Write(make([]byte, 24))
	f.Add(get.Bytes())
	f.Add([]byte{opDrop, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{opStat, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{255, 255, 255})

	f.Fuzz(func(t *testing.T, data []byte) {
		space := NewSpace(1, 1<<20, grid.NewBox(grid.IV(0, 0, 0), grid.IV(63, 63, 63)))
		s := &Server{space: space}
		r := bufio.NewReader(bytes.NewReader(data))
		w := bufio.NewWriter(io.Discard)
		// Serve requests off the buffer until it errors out (EOF at the
		// latest) — mirrors Server.handle without a real socket.
		var busy atomic.Bool
		for i := 0; i < 16; i++ {
			if err := s.handleOne(r, w, &busy); err != nil {
				break
			}
			w.Flush()
		}
	})
}

// FuzzTenantKey pins the tenant-namespace codec: for every accepted
// (tenant, var) pair, encode∘decode must be the identity — a hostile
// tenant id can never be mangled into another tenant's namespace, only
// rejected outright — and any key the splitter attributes to a tenant must
// re-encode to the identical key (no two namespaces share a key).
func FuzzTenantKey(f *testing.F) {
	f.Add("t0", "analysis")
	f.Add("team-a", "analysis#r2")
	f.Add("t1", "nested/looking/var")
	f.Add("", "x")       // empty tenant must be rejected
	f.Add("a/b", "x")    // separator smuggling must be rejected
	f.Add("t0/t1", "x")  // nested-namespace smuggling must be rejected
	f.Add("..", "x")     // path-looking ids are allowed chars, must round-trip
	f.Add("t0", "")      // empty var must be rejected
	f.Add("t0", "/")     // var beginning with the separator
	f.Add("a\x00b", "x") // control bytes must be rejected
	f.Add("é", "x")      // non-ASCII must be rejected

	f.Fuzz(func(t *testing.T, tenant, varName string) {
		key, err := TenantVar(tenant, varName)
		if err != nil {
			// Rejection is fine — but the validator must agree it was
			// hostile: a valid tenant with a non-empty var always encodes.
			if ValidTenant(tenant) && varName != "" {
				t.Fatalf("TenantVar(%q, %q) rejected a valid pair: %v", tenant, varName, err)
			}
			return
		}
		if !ValidTenant(tenant) || varName == "" {
			t.Fatalf("TenantVar(%q, %q) accepted a hostile pair", tenant, varName)
		}
		ten, v, ok := SplitTenantVar(key)
		if !ok || ten != tenant || v != varName {
			t.Fatalf("split(%q) = (%q, %q, %v), want (%q, %q, true)",
				key, ten, v, ok, tenant, varName)
		}
		if got := TenantOf(key); got != tenant {
			t.Fatalf("TenantOf(%q) = %q, want %q", key, got, tenant)
		}
		// Re-encoding the split must reproduce the identical key: no two
		// (tenant, var) pairs can collide on one wire key.
		key2, err := TenantVar(ten, v)
		if err != nil || key2 != key {
			t.Fatalf("re-encode of split(%q) = (%q, %v)", key, key2, err)
		}
	})
}

// TestDecodeBoundsAllocationToInput pins the over-allocation defense: a
// header claiming a near-maximal box followed by a tiny body must fail
// fast without ballooning memory (the chunked reader stops at EOF).
func TestDecodeBoundsAllocationToInput(t *testing.T) {
	hostile := make([]byte, 32)
	binary.LittleEndian.PutUint32(hostile[0:], blockMagic)
	// box (0,0,0)-(399,399,399) = 64e6 cells, within maxWireCells, would be
	// 512 MB of payload if the claim were honored up front.
	binary.LittleEndian.PutUint32(hostile[16:], 399)
	binary.LittleEndian.PutUint32(hostile[20:], 399)
	binary.LittleEndian.PutUint32(hostile[24:], 399)
	binary.LittleEndian.PutUint32(hostile[28:], 1)
	hostile = append(hostile, make([]byte, 100)...) // 100 bytes of "payload"

	var before, after int64
	before = allocatedBytes()
	_, err := DecodeBlock(bytes.NewReader(hostile))
	after = allocatedBytes()
	if err == nil {
		t.Fatal("hostile header accepted")
	}
	// The decode saw ~132 bytes of input; anything beyond a couple of MB of
	// growth means the claimed size was allocated up front.
	if grown := after - before; grown > 8<<20 {
		t.Errorf("decode of 132-byte input grew heap by %d bytes", grown)
	}
}
