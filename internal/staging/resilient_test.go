package staging

import (
	"errors"
	"net"
	"testing"
	"time"

	"crosslayer/internal/faultnet"
	"crosslayer/internal/grid"
)

// fastOpts keeps failure tests quick: tight deadlines, short backoff.
func fastOpts() ClientOptions {
	return ClientOptions{
		OpTimeout:   500 * time.Millisecond,
		MaxRetries:  2,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
	}
}

// faultServer starts a staging server behind a faultnet listener.
func faultServer(t *testing.T, plan faultnet.Plan) *Server {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeOn(faultnet.Listen(ln, plan), NewSpace(2, 0, dom()))
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestClientReconnectsAfterRefusedFirstConn(t *testing.T) {
	// The first accepted connection is refused: the initial dial succeeds
	// at the TCP level but the first operation fails. The client must back
	// off, redial transparently, and complete the operation on the second
	// connection.
	srv := faultServer(t, faultnet.Plan{RefuseAccepts: 1})
	cl, err := DialOptions(srv.Addr(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	d := block(grid.IV(0, 0, 0), 4, 2.5)
	if err := cl.Put("rho", 1, d); err != nil {
		t.Fatalf("Put through refused-then-healthy server: %v", err)
	}
	got, err := cl.GetBlocks("rho", 1, dom())
	if err != nil || len(got) != 1 || !got[0].Equal(d) {
		t.Fatalf("GetBlocks after reconnect: %d blocks, %v", len(got), err)
	}
	retries, reconnects := cl.TransportStats()
	if retries < 1 || reconnects < 1 {
		t.Fatalf("stats = %d retries, %d reconnects; want >= 1 each", retries, reconnects)
	}
}

func TestClientUnavailableWhenServerRefusesEverything(t *testing.T) {
	srv := faultServer(t, faultnet.Plan{RefuseAccepts: -1})
	cl, err := DialOptions(srv.Addr(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	start := time.Now()
	err = cl.Put("rho", 0, block(grid.IV(0, 0, 0), 4, 1))
	if !errors.Is(err, ErrStagingUnavailable) {
		t.Fatalf("Put err = %v, want ErrStagingUnavailable", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("budget exhaustion took %v", d)
	}
	retries, _ := cl.TransportStats()
	if retries != 2 {
		t.Fatalf("retries = %d, want exactly MaxRetries = 2", retries)
	}
}

func TestClientUnavailableWhenConnsDropMidRequest(t *testing.T) {
	// Every connection dies after 16 bytes: puts can never complete.
	srv := faultServer(t, faultnet.Plan{DropAfterBytes: 16})
	cl, err := DialOptions(srv.Addr(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	err = cl.Put("rho", 0, block(grid.IV(0, 0, 0), 8, 1))
	if !errors.Is(err, ErrStagingUnavailable) {
		t.Fatalf("Put err = %v, want ErrStagingUnavailable", err)
	}
}

func TestClientRejectsCorruptResponsesWithoutHanging(t *testing.T) {
	// Every server write has one byte flipped: responses are garbage. The
	// client must fail each attempt cleanly (protocol error), reconnect,
	// and surface ErrStagingUnavailable — never hang or accept bad data.
	srv := faultServer(t, faultnet.Plan{Seed: 11, CorruptRate: 1})
	cl, err := DialOptions(srv.Addr(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Put("rho", 0, block(grid.IV(0, 0, 0), 4, 1)); !errors.Is(err, ErrStagingUnavailable) {
		t.Fatalf("Put err = %v, want ErrStagingUnavailable", err)
	}
	if _, err := cl.GetBlocks("rho", 0, dom()); !errors.Is(err, ErrStagingUnavailable) {
		t.Fatalf("GetBlocks err = %v, want ErrStagingUnavailable", err)
	}
}

func TestPutRetriesAreIdempotent(t *testing.T) {
	// Corrupt responses make the client replay puts that actually landed;
	// a replay carries the same put sequence number, so it must replace,
	// not duplicate. Verify through a second, healthy server sharing the
	// space.
	sp := NewSpace(2, 0, dom())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	faulty := ServeOn(faultnet.Listen(ln, faultnet.Plan{Seed: 11, CorruptRate: 1}), sp)
	defer faulty.Close()
	healthy, err := Serve("127.0.0.1:0", sp)
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()

	cl, err := DialOptions(faulty.Addr(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	d := block(grid.IV(0, 0, 0), 4, 7)
	cl.Put("rho", 0, d) // fails client-side, lands (possibly repeatedly) server-side

	ok, err := Dial(healthy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ok.Close()
	got, err := ok.GetBlocks("rho", 0, dom())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("replayed put stored %d blocks, want 1", len(got))
	}
	if !got[0].Equal(d) {
		t.Fatal("stored block corrupted")
	}
}

func TestClientOpDeadlineOnSilentServer(t *testing.T) {
	// A listener that accepts and then never responds: without per-op
	// deadlines the client would block forever on the status read.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			// Swallow the request, never reply.
			go func() {
				buf := make([]byte, 1024)
				for {
					if _, err := conn.Read(buf); err != nil {
						conn.Close()
						return
					}
				}
			}()
		}
	}()
	opts := fastOpts()
	opts.OpTimeout = 100 * time.Millisecond
	cl, err := DialOptions(ln.Addr().String(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	start := time.Now()
	if err := cl.Put("rho", 0, block(grid.IV(0, 0, 0), 4, 1)); !errors.Is(err, ErrStagingUnavailable) {
		t.Fatalf("Put err = %v, want ErrStagingUnavailable", err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("silent server wedged the client for %v", d)
	}
}

func TestClientLatencyTolerated(t *testing.T) {
	// Slow but functional links succeed within the deadline.
	srv := faultServer(t, faultnet.Plan{Latency: 2 * time.Millisecond})
	cl, err := DialOptions(srv.Addr(), ClientOptions{OpTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Put("rho", 0, block(grid.IV(0, 0, 0), 4, 3)); err != nil {
		t.Fatalf("Put over slow link: %v", err)
	}
}

func TestClientClosedFailsFast(t *testing.T) {
	_, cl := startServer(t)
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Put("rho", 0, block(grid.IV(0, 0, 0), 4, 1)); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("Put after Close: %v, want net.ErrClosed", err)
	}
}

func TestServerCloseSeversInFlightConns(t *testing.T) {
	// Regression: a handler blocked mid-request must not keep Close (and
	// its wg.Wait) hanging. Open a raw connection, send a partial request
	// header, and demand Close returns promptly.
	sp := NewSpace(1, 0, dom())
	srv, err := Serve("127.0.0.1:0", sp)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{opPut}); err != nil { // header is 3 bytes; handler now blocks
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the handler reach its blocking read

	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Server.Close hung on an in-flight connection")
	}
}

func TestServerCloseRejectsLateConns(t *testing.T) {
	sp := NewSpace(1, 0, dom())
	srv, err := Serve("127.0.0.1:0", sp)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Double Close is safe.
	srv.Close()
}

func TestDeterministicFailureCounts(t *testing.T) {
	// The same fault plan against the same traffic yields the same retry
	// and reconnect counters — the property the workflow-level
	// reproducibility test builds on.
	run := func() (int64, int64) {
		srv := faultServer(t, faultnet.Plan{Seed: 9, RefuseAccepts: -1})
		cl, err := DialOptions(srv.Addr(), fastOpts())
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		for i := 0; i < 3; i++ {
			cl.Put("rho", i, block(grid.IV(0, 0, 0), 4, 1))
		}
		return cl.TransportStats()
	}
	r1, c1 := run()
	r2, c2 := run()
	if r1 != r2 || c1 != c2 {
		t.Fatalf("runs differ: (%d,%d) vs (%d,%d)", r1, c1, r2, c2)
	}
}
