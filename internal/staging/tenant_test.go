package staging

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"crosslayer/internal/grid"
	"crosslayer/internal/obs"
)

func TestValidTenant(t *testing.T) {
	valid := []string{"t0", "team-a", "a.b_c-d", "A", strings.Repeat("x", 64)}
	for _, id := range valid {
		if !ValidTenant(id) {
			t.Errorf("ValidTenant(%q) = false, want true", id)
		}
	}
	invalid := []string{"", "a/b", "a#b", "a@b", "a b", "a\x00b", "é", "a\n",
		strings.Repeat("x", 65)}
	for _, id := range invalid {
		if ValidTenant(id) {
			t.Errorf("ValidTenant(%q) = true, want false", id)
		}
	}
}

func TestTenantVarRoundTrip(t *testing.T) {
	cases := []struct{ tenant, varName string }{
		{"t0", "analysis"},
		{"team-a", "analysis@3"},     // '@' legal in var names (version keys)
		{"t1", "analysis#r2"},        // replica-suffixed pool vars
		{"t2", "nested/looking/var"}, // '/' legal in var names: split is at the FIRST separator
		{"a.b_c-d", "x"},
	}
	for _, c := range cases {
		key, err := TenantVar(c.tenant, c.varName)
		if err != nil {
			t.Errorf("TenantVar(%q, %q): %v", c.tenant, c.varName, err)
			continue
		}
		ten, v, ok := SplitTenantVar(key)
		if !ok || ten != c.tenant || v != c.varName {
			t.Errorf("SplitTenantVar(%q) = (%q, %q, %v), want (%q, %q, true)",
				key, ten, v, ok, c.tenant, c.varName)
		}
		if got := TenantOf(key); got != c.tenant {
			t.Errorf("TenantOf(%q) = %q, want %q", key, got, c.tenant)
		}
	}
}

func TestTenantVarRejectsHostileInputs(t *testing.T) {
	// A tenant id that could collide with or escape into another namespace
	// must be rejected at encode time, not mangled.
	for _, tenant := range []string{"", "a/b", "a/../b", "t0/t1", "#", "@", "a b"} {
		if _, err := TenantVar(tenant, "x"); !errors.Is(err, ErrBadTenant) {
			t.Errorf("TenantVar(%q, x) err = %v, want ErrBadTenant", tenant, err)
		}
	}
	if _, err := TenantVar("t0", ""); err == nil {
		t.Error("TenantVar with empty var name accepted")
	}
}

func TestTenantOfUntenanted(t *testing.T) {
	// Historical keys and keys whose prefix is not a valid tenant id stay in
	// the root namespace.
	for _, key := range []string{"analysis", "analysis#r1", "a b/x", "/x", "é/x", "t0/"} {
		if got := TenantOf(key); got != "" {
			t.Errorf("TenantOf(%q) = %q, want \"\"", key, got)
		}
	}
}

func TestSpaceTenantQuota(t *testing.T) {
	sp := NewSpace(2, 0, dom())
	blockBytes := block(grid.IV(0, 0, 0), 4, 1).Bytes()
	sp.SetTenantQuota("t0", TenantQuota{MaxBytes: 3 * blockBytes})

	key, _ := TenantVar("t0", "rho")
	for v := 0; v < 3; v++ {
		if err := sp.Put(key, v, block(grid.IV(0, 0, 0), 4, float64(v))); err != nil {
			t.Fatalf("put %d within quota: %v", v, err)
		}
	}
	if err := sp.Put(key, 3, block(grid.IV(0, 0, 0), 4, 9)); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("put over quota err = %v, want ErrQuotaExceeded", err)
	}
	bytes, blocks := sp.TenantUsage("t0")
	if bytes != 3*blockBytes || blocks != 3 {
		t.Errorf("TenantUsage = (%d, %d), want (%d, 3)", bytes, blocks, 3*blockBytes)
	}

	// Another tenant and the root namespace are not constrained by t0's quota.
	other, _ := TenantVar("t1", "rho")
	if err := sp.Put(other, 0, block(grid.IV(0, 0, 0), 4, 1)); err != nil {
		t.Errorf("other tenant put: %v", err)
	}
	if err := sp.Put("rho", 0, block(grid.IV(0, 0, 0), 4, 1)); err != nil {
		t.Errorf("untenanted put: %v", err)
	}

	// Eviction returns headroom: dropping versions < 2 frees two blocks.
	if freed := sp.DropBefore(key, 2); freed != 2*blockBytes {
		t.Fatalf("DropBefore freed %d bytes, want %d", freed, 2*blockBytes)
	}
	bytes, blocks = sp.TenantUsage("t0")
	if bytes != blockBytes || blocks != 1 {
		t.Errorf("TenantUsage after drop = (%d, %d), want (%d, 1)", bytes, blocks, blockBytes)
	}
	if err := sp.Put(key, 3, block(grid.IV(0, 0, 0), 4, 9)); err != nil {
		t.Errorf("put after eviction: %v", err)
	}
}

func TestSpaceTenantQuotaBlocksAndReplace(t *testing.T) {
	sp := NewSpace(1, 0, dom())
	sp.SetTenantQuota("t0", TenantQuota{MaxBlocks: 2})
	key, _ := TenantVar("t0", "rho")
	// A sequenced replace must not consume quota twice.
	if err := sp.PutSeq(key, 0, 7, block(grid.IV(0, 0, 0), 4, 1)); err != nil {
		t.Fatal(err)
	}
	if err := sp.PutSeq(key, 0, 7, block(grid.IV(0, 0, 0), 4, 2)); err != nil {
		t.Fatalf("same-seq replace rejected: %v", err)
	}
	if _, blocks := sp.TenantUsage("t0"); blocks != 1 {
		t.Fatalf("blocks after replace = %d, want 1", blocks)
	}
	if err := sp.Put(key, 1, block(grid.IV(8, 0, 0), 4, 1)); err != nil {
		t.Fatal(err)
	}
	if err := sp.Put(key, 2, block(grid.IV(16, 0, 0), 4, 1)); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("third block err = %v, want ErrQuotaExceeded", err)
	}
}

// countingSink tallies events by kind; used to reconcile admission events
// against stats and metrics.
type countingSink struct {
	mu     sync.Mutex
	byKind map[obs.Kind]int
}

func (s *countingSink) Emit(ev obs.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.byKind == nil {
		s.byKind = make(map[obs.Kind]int)
	}
	s.byKind[ev.Kind]++
}
func (s *countingSink) Close() error { return nil }

func (s *countingSink) count(kind obs.Kind) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byKind[kind]
}

// waitFor polls until cond holds or the deadline lapses.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// startAdmissionServer stands up a server with the given admission caps,
// wired to a counting event sink and a metrics registry.
func startAdmissionServer(t *testing.T, maxConns, backlog int) (*Server, *countingSink, *obs.Registry) {
	t.Helper()
	sink := &countingSink{}
	reg := obs.NewRegistry()
	sp := NewSpace(2, 0, dom())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeOnOptions(ln, sp, ServerOptions{
		MaxConns: maxConns,
		Backlog:  backlog,
		Events:   obs.NewEmitter(sink),
	})
	srv.Observe(reg)
	t.Cleanup(func() { srv.Close() })
	return srv, sink, reg
}

// noRetryClient dials with the retry budget disabled so each op maps to
// exactly one wire attempt.
func noRetryClient(t *testing.T, addr string) *Client {
	t.Helper()
	c := NewClient(addr, ClientOptions{MaxRetries: -1, OpTimeout: 2 * time.Second})
	t.Cleanup(func() { c.Close() })
	return c
}

// TestAdmissionConnFlood is the regression test for the once-unbounded
// accept loop: with MaxConns=2 and no backlog, two established connections
// occupy both slots and every further connection is refused
// deterministically — shed with reason max_conns, counted identically by
// AdmissionStats, the shed events, and the Prometheus counter — while
// Close still drains cleanly with connections open.
func TestAdmissionConnFlood(t *testing.T) {
	srv, sink, reg := startAdmissionServer(t, 2, 0)

	c1 := noRetryClient(t, srv.Addr())
	c2 := noRetryClient(t, srv.Addr())
	if _, err := c1.MemUsed(); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.MemUsed(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "both slots held", func() bool {
		admitted, _, _, _ := srv.AdmissionStats()
		return admitted == 2
	})

	const flood = 3
	for i := 0; i < flood; i++ {
		c := noRetryClient(t, srv.Addr())
		if _, err := c.MemUsed(); err == nil {
			t.Fatalf("flood conn %d admitted past MaxConns", i)
		}
	}
	waitFor(t, "flood conns shed", func() bool {
		_, _, shed, _ := srv.AdmissionStats()
		return shed == flood
	})
	admitted, queued, shed, _ := srv.AdmissionStats()
	if admitted != 2 || queued != 0 || shed != flood {
		t.Errorf("AdmissionStats = (%d, %d, %d), want (2, 0, %d)", admitted, queued, shed, flood)
	}
	if n := sink.count(obs.KindAdmissionShed); n != flood {
		t.Errorf("shed events = %d, want %d", n, flood)
	}
	if v := reg.Counter("xlayer_staging_admission_shed_total", "",
		"reason", "max_conns").Value(); v != flood {
		t.Errorf("shed{reason=max_conns} metric = %v, want %d", v, flood)
	}
	if v := reg.Counter("xlayer_staging_admission_shed_total", "",
		"reason", "backlog_full").Value(); v != 0 {
		t.Errorf("shed{reason=backlog_full} metric = %v, want 0", v)
	}

	// Releasing a slot lets the next connection through.
	c1.Close()
	c3 := noRetryClient(t, srv.Addr())
	waitFor(t, "freed slot re-admitted", func() bool {
		_, err := c3.MemUsed()
		return err == nil
	})

	// Close must drain with c2/c3 still connected — severed, not leaked.
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not drain with connections open")
	}
}

// TestAdmissionBacklogQueues pins the backlog path: a connection beyond
// MaxConns parks in the bounded backlog and is admitted when a slot frees;
// one beyond the backlog is shed with reason backlog_full.
func TestAdmissionBacklogQueues(t *testing.T) {
	srv, sink, reg := startAdmissionServer(t, 1, 1)

	c1 := noRetryClient(t, srv.Addr())
	if _, err := c1.MemUsed(); err != nil {
		t.Fatal(err)
	}
	// c2 parks: its op blocks until c1 releases the slot.
	c2 := noRetryClient(t, srv.Addr())
	res := make(chan error, 1)
	go func() {
		_, err := c2.MemUsed()
		res <- err
	}()
	waitFor(t, "conn queued", func() bool {
		_, queued, _, _ := srv.AdmissionStats()
		return queued == 1
	})
	// Give the dispatcher time to pull c2 out of the backlog buffer (it
	// holds one connection in hand while waiting for a slot), then fill the
	// buffer itself with c3.
	time.Sleep(50 * time.Millisecond)
	c3 := noRetryClient(t, srv.Addr())
	go func() { _, _ = c3.MemUsed() }()
	waitFor(t, "second conn queued", func() bool {
		_, queued, _, _ := srv.AdmissionStats()
		return queued == 2
	})
	// Slot, dispatcher hand, and backlog all full: the next connection is
	// shed as backlog_full.
	c4 := noRetryClient(t, srv.Addr())
	if _, err := c4.MemUsed(); err == nil {
		t.Fatal("conn admitted past slot + backlog")
	}
	waitFor(t, "overflow shed", func() bool {
		_, _, shed, _ := srv.AdmissionStats()
		return shed == 1
	})
	if v := reg.Counter("xlayer_staging_admission_shed_total", "",
		"reason", "backlog_full").Value(); v != 1 {
		t.Errorf("shed{reason=backlog_full} metric = %v, want 1", v)
	}
	if n := sink.count(obs.KindAdmissionShed); n != 1 {
		t.Errorf("shed events = %d, want 1", n)
	}

	c1.Close()
	select {
	case err := <-res:
		if err != nil {
			t.Fatalf("queued conn's op failed after slot freed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued conn never admitted after slot freed")
	}
}

// TestAdmissionQuotaReconciliation is the seeded property test: random
// quota configurations and random tenant workloads, then an exact
// reconciliation — client-observed quota rejections == the server's
// AdmissionStats tally == the quota_rejected metric == the emitted
// quota_rejected events, and admitted/shed stats == their metrics.
func TestAdmissionQuotaReconciliation(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			srv, sink, reg := startAdmissionServer(t, 2+rng.Intn(3), rng.Intn(2))
			tenants := 2 + rng.Intn(2)
			tenantID := func(i int) string { return fmt.Sprintf("t%d", i) }
			blockBytes := block(grid.IV(0, 0, 0), 4, 1).Bytes()
			for i := 0; i < tenants; i++ {
				// Quota between 1 and 6 blocks' worth of bytes; tenant 0
				// additionally gets a block-count cap.
				q := TenantQuota{MaxBytes: int64(1+rng.Intn(6)) * blockBytes}
				if i == 0 {
					q.MaxBlocks = 1 + rng.Intn(4)
				}
				srv.space.SetTenantQuota(tenantID(i), q)
			}

			rejected := 0
			for op := 0; op < 40; op++ {
				tenant := tenantID(rng.Intn(tenants))
				key, err := TenantVar(tenant, "rho")
				if err != nil {
					t.Fatal(err)
				}
				cl := noRetryClient(t, srv.Addr())
				lo := grid.IV(8*rng.Intn(4), 8*rng.Intn(4), 0)
				err = cl.Put(key, rng.Intn(4), block(lo, 4, float64(op)))
				switch {
				case err == nil:
				case errors.Is(err, ErrQuotaExceeded):
					rejected++
				default:
					t.Fatalf("op %d: %v", op, err)
				}
				cl.Close()
			}
			if rejected == 0 {
				t.Fatalf("seed produced no quota rejections; tighten the generator")
			}

			_, _, _, quotaStat := srv.AdmissionStats()
			if int(quotaStat) != rejected {
				t.Errorf("AdmissionStats quota = %d, client saw %d", quotaStat, rejected)
			}
			if v := reg.Counter("xlayer_staging_admission_quota_rejected_total", "").Value(); int(v) != rejected {
				t.Errorf("quota_rejected metric = %v, client saw %d", v, rejected)
			}
			if n := sink.count(obs.KindQuotaRejected); n != rejected {
				t.Errorf("quota_rejected events = %d, client saw %d", n, rejected)
			}

			// Admission tallies and their metrics must agree exactly too.
			waitFor(t, "admission stats settled", func() bool {
				admitted, queued, shed, _ := srv.AdmissionStats()
				return int(reg.Counter("xlayer_staging_admission_admitted_total", "").Value()) == int(admitted) &&
					int(reg.Counter("xlayer_staging_admission_queued_total", "").Value()) == int(queued) &&
					int(reg.Counter("xlayer_staging_admission_shed_total", "", "reason", "max_conns").Value())+
						int(reg.Counter("xlayer_staging_admission_shed_total", "", "reason", "backlog_full").Value()) == int(shed)
			})
		})
	}
}
