//go:build race

package staging

import (
	"net"
	"sync"
	"testing"
	"time"

	"crosslayer/internal/faultnet"
	"crosslayer/internal/field"
)

// TestConcurrentPoolFaultSoak drives the parallel data path hard under the
// race detector (`make race` sets the build tag): a 3-server / 2-replica
// pool at Concurrency 8, every link behind a seeded faultnet plan that adds
// latency and severs each connection after a byte budget, plus a full
// crash/rejoin of one server mid-soak. Writers and readers run
// concurrently throughout. At the end the pool's manifest must account for
// every successful put and a full replica audit must find zero lost
// blocks.
func TestConcurrentPoolFaultSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const (
		servers  = 3
		replicas = 2
		conc     = 8
		versions = 12
	)
	plan := faultnet.Plan{
		Seed:           7,
		Latency:        100 * time.Microsecond,
		DropAfterBytes: 64 << 10,
	}

	var (
		addrs  []string
		gates  []*faultnet.Gate
		spaces []*Space
	)
	for i := 0; i < servers; i++ {
		sp := NewSpace(1, 0, dom())
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		g := faultnet.NewGate(ln)
		srv := ServeOn(faultnet.Listen(g, plan), sp)
		t.Cleanup(func() { srv.Close() })
		gates = append(gates, g)
		spaces = append(spaces, sp)
		addrs = append(addrs, ln.Addr().String())
	}
	pool, err := NewPool(addrs, dom(), PoolOptions{
		Replicas:         replicas,
		Concurrency:      conc,
		FailureThreshold: 1,
		ProbeEvery:       1,
		Client: ClientOptions{
			OpTimeout:   5 * time.Second,
			MaxRetries:  3, // absorb the plan's connection drops
			BackoffBase: time.Millisecond,
			BackoffMax:  5 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pool.Close() })

	blocks := spread()
	for v := 0; v < versions; v++ {
		// Crash server 1 after version 3 settles (transport severed, state
		// wiped); rejoin it before version 8's puts.
		if v == 4 {
			gates[1].Kill()
			spaces[1].Clear()
		}
		if v == 8 {
			gates[1].Revive()
		}

		// conc writer goroutines ship this version while readers replay
		// earlier, fully settled versions through the hedged path (reading
		// the in-flight version would legitimately return a partial set).
		var wg sync.WaitGroup
		sem := make(chan struct{}, conc)
		errs := make(chan error, len(blocks)+2)
		for _, b := range blocks {
			sem <- struct{}{}
			wg.Add(1)
			go func(b *field.BoxData) {
				defer wg.Done()
				defer func() { <-sem }()
				if err := pool.Put("rho", v, b); err != nil {
					errs <- err
				}
			}(b)
		}
		for _, rv := range []int{v - 1, (v - 1) / 2} {
			// Note (-1)/2 truncates to 0 in Go: the rv >= v half of the
			// guard keeps version 0's iteration from reading itself.
			if rv < 0 || rv >= v {
				continue
			}
			wg.Add(1)
			go func(rv int) {
				defer wg.Done()
				got, err := pool.GetBlocks("rho", rv, dom())
				if err != nil {
					errs <- err
					return
				}
				if len(got) != len(blocks) {
					t.Errorf("version %d read %d of %d blocks", rv, len(got), len(blocks))
				}
			}(rv)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatalf("version %d: %v", v, err)
		}
		pool.DrainEvents()
	}

	// One more full read lets the breaker probe, repair, and rejoin the
	// revived server before the audit scrutinizes every replica.
	if _, err := pool.GetBlocks("rho", versions-1, dom()); err != nil {
		t.Fatal(err)
	}
	if healthy, total := pool.HealthyEndpoints(); healthy != total {
		t.Errorf("%d/%d endpoints healthy after rejoin", healthy, total)
	}

	m := pool.Manifest()
	if len(m.Entries) != versions {
		t.Fatalf("manifest has %d entries, want %d", len(m.Entries), versions)
	}
	for _, e := range m.Entries {
		if e.Var != "rho" || e.Blocks != len(blocks) {
			t.Fatalf("manifest entry %+v, want %d blocks of rho", e, len(blocks))
		}
	}
	if missing := pool.Audit(m); missing != 0 {
		t.Fatalf("audit found %d lost blocks after faulted soak", missing)
	}
}
