package staging

import (
	"os"
	"path/filepath"
	"testing"

	"crosslayer/internal/grid"
)

// walImageSeed builds a genuine WAL image: a persisted space mutated through
// every record-producing path (puts, a tenant-settled put, a drop, a clear,
// more puts), then crash-detached so the file is exactly what a kill -9
// leaves behind.
func walImageSeed(f *testing.F) []byte {
	dir := f.TempDir()
	sp := NewSpace(2, 0, dom())
	if _, err := sp.Persist(dir, "s0"); err != nil {
		f.Fatal(err)
	}
	for i := int64(1); i <= 3; i++ {
		if err := sp.PutSeq("rho", 0, i, block(grid.IV(int(i)*8, 0, 0), 8, float64(i))); err != nil {
			f.Fatal(err)
		}
	}
	if err := sp.PutSeq("t0/u", 1, 4, block(grid.IV(0, 8, 0), 8, 9)); err != nil {
		f.Fatal(err)
	}
	sp.DropBefore("rho", 0)
	sp.Clear()
	if err := sp.PutSeq("rho", 2, 5, block(grid.IV(0, 0, 8), 8, 2.5)); err != nil {
		f.Fatal(err)
	}
	sp.CrashPersist()
	data, err := os.ReadFile(filepath.Join(dir, walFileName))
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// snapImageSeed builds a genuine snapshot image via a forced compaction.
func snapImageSeed(f *testing.F) []byte {
	dir := f.TempDir()
	sp := NewSpace(2, 0, dom())
	if _, err := sp.Persist(dir, "s0"); err != nil {
		f.Fatal(err)
	}
	if err := sp.PutSeq("rho", 0, 1, block(grid.IV(0, 0, 0), 8, 1)); err != nil {
		f.Fatal(err)
	}
	if err := sp.PutSeq("t0/u", 3, 2, block(grid.IV(8, 0, 0), 8, -2)); err != nil {
		f.Fatal(err)
	}
	if err := sp.CompactWAL(); err != nil {
		f.Fatal(err)
	}
	sp.CrashPersist()
	data, err := os.ReadFile(filepath.Join(dir, snapFileName))
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// fuzzSameContent is assertSameContent for fuzz bodies (no t.Helper chain
// through testing.T vs testing.F differences to worry about).
func fuzzSameContent(t *testing.T, want, got *Space) {
	wm, wsz := want.ContentManifestSized()
	gm, gsz := got.ContentManifestSized()
	if !wm.Equal(gm) {
		t.Fatalf("manifests differ:\nwant %+v\ngot  %+v", wm.Entries, gm.Entries)
	}
	for i := range wsz {
		if wsz[i] != gsz[i] {
			t.Fatalf("entry %s@%d: %d bytes, want %d",
				wm.Entries[i].Var, wm.Entries[i].Version, gsz[i], wsz[i])
		}
	}
}

// FuzzStagingWAL feeds arbitrary bytes to the WAL scanner and, for every
// image recovery accepts, demands the recover∘replay identity: recovering
// the dir a first recovery left behind must reproduce the identical
// content manifest with no torn tail (the first pass truncated it). The
// scanner must never panic and never over-trust a decoded field — every
// length, version, and delta is range-checked before use — no matter how
// hostile or truncated the log is.
func FuzzStagingWAL(f *testing.F) {
	valid := walImageSeed(f)
	f.Add([]byte{})
	f.Add(valid)
	// Torn tails at awkward offsets: mid-header, mid-record, mid-checksum.
	for _, cut := range []int{1, 7, len(valid) / 3, len(valid) - 3, len(valid) - 1} {
		if cut > 0 && cut < len(valid) {
			f.Add(valid[:cut])
		}
	}
	// A checksum-valid record stream with hostile contents: flip the codec
	// version byte region and the first record-type byte past the header.
	if len(valid) > 16 {
		mut := append([]byte(nil), valid...)
		mut[8] ^= 0xff
		f.Add(mut)
	}
	f.Add(snapImageSeed(f)) // a snapshot is not a WAL; must be rejected

	f.Fuzz(func(t *testing.T, data []byte) {
		if _, err := scanWAL(data, "s0"); err != nil {
			return // rejection is fine; panicking or misdecoding is not
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walFileName), data, 0o666); err != nil {
			t.Fatal(err)
		}
		first := NewSpace(2, 0, dom())
		if _, err := first.Persist(dir, "s0"); err != nil {
			return // scan-valid but replay-hostile (e.g. epoch>0 without its snapshot)
		}
		if err := first.ClosePersist(); err != nil {
			t.Fatalf("close after recovery: %v", err)
		}
		second := NewSpace(2, 0, dom())
		st, err := second.Persist(dir, "s0")
		if err != nil {
			t.Fatalf("recovering a recovered dir: %v", err)
		}
		if st.TornTail {
			t.Fatal("second recovery saw a torn tail after the first truncated it")
		}
		fuzzSameContent(t, first, second)
		second.CrashPersist()
	})
}

// FuzzStagingSnapshot feeds arbitrary bytes to the snapshot scanner. A
// snapshot is complete-or-absent by rename atomicity, so the scanner must
// reject anything torn, trailing, or miscounted; for every accepted image,
// recovery over it must succeed, report the scanned object count, and a
// fresh compaction of the recovered space must produce a snapshot that
// scans back to the same content (snapshot∘recover identity).
func FuzzStagingSnapshot(f *testing.F) {
	valid := snapImageSeed(f)
	f.Add([]byte{})
	f.Add(valid)
	for _, cut := range []int{1, len(valid) / 2, len(valid) - 1} {
		if cut > 0 && cut < len(valid) {
			f.Add(valid[:cut])
		}
	}
	if len(valid) > 16 {
		mut := append([]byte(nil), valid...)
		mut[10] ^= 0x40
		f.Add(mut)
	}
	f.Add(walImageSeed(f)) // a WAL is not a snapshot; must be rejected

	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, objs, err := scanSnapshot(data, "s0")
		if err != nil {
			return
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, snapFileName), data, 0o666); err != nil {
			t.Fatal(err)
		}
		sp := NewSpace(2, 0, dom())
		st, err := sp.Persist(dir, "s0")
		if err != nil {
			return // structurally valid but replay-hostile object payloads
		}
		if !st.WALMissing {
			t.Fatal("snapshot-only recovery did not report the missing WAL")
		}
		if st.SnapshotBlocks != len(objs) {
			t.Fatalf("recovery loaded %d snapshot blocks, scan saw %d", st.SnapshotBlocks, len(objs))
		}
		if err := sp.CompactWAL(); err != nil {
			t.Fatalf("compacting recovered space: %v", err)
		}
		resnap, err := os.ReadFile(filepath.Join(dir, snapFileName))
		if err != nil {
			t.Fatal(err)
		}
		_, _, objs2, err := scanSnapshot(resnap, "s0")
		if err != nil {
			t.Fatalf("re-snapshot of recovered space does not scan: %v", err)
		}
		if len(objs2) != st.Blocks {
			t.Fatalf("re-snapshot holds %d objects, recovered space holds %d", len(objs2), st.Blocks)
		}
		sp.CrashPersist()
	})
}
