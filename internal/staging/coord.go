package staging

import (
	"fmt"
	"sync"

	"crosslayer/internal/field"
)

// Coordination primitives in the DataSpaces tradition: named read/write
// locks over (variable, version) — DataSpaces' dspaces_lock_on_read/write —
// and a publish/subscribe notification channel over variables, in the
// spirit of the messaging layer the authors built on the staging area
// (paper ref [9]). Coupled codes use these to hand versions off safely:
// the writer locks-for-write, puts, unlocks; readers lock-for-read and are
// woken by notifications instead of polling.

// LockManager provides named reader/writer locks. The zero value is not
// usable; create with NewLockManager.
type LockManager struct {
	mu    sync.Mutex
	locks map[string]*rwState
}

type rwState struct {
	cond    *sync.Cond
	readers int
	writer  bool
}

// NewLockManager creates an empty lock manager.
func NewLockManager() *LockManager {
	return &LockManager{locks: make(map[string]*rwState)}
}

func (lm *LockManager) state(name string) *rwState {
	st, ok := lm.locks[name]
	if !ok {
		st = &rwState{}
		st.cond = sync.NewCond(&lm.mu)
		lm.locks[name] = st
	}
	return st
}

// lockKey names the lock protecting one variable version.
func lockKey(varName string, version int) string {
	return fmt.Sprintf("%s@%d", varName, version)
}

// LockRead blocks until no writer holds the named lock, then registers a
// reader.
func (lm *LockManager) LockRead(varName string, version int) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	st := lm.state(lockKey(varName, version))
	for st.writer {
		st.cond.Wait()
	}
	st.readers++
}

// UnlockRead releases a reader hold.
func (lm *LockManager) UnlockRead(varName string, version int) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	st := lm.state(lockKey(varName, version))
	if st.readers <= 0 {
		panic("staging: UnlockRead without LockRead")
	}
	st.readers--
	if st.readers == 0 {
		st.cond.Broadcast()
	}
}

// LockWrite blocks until the named lock has no readers and no writer, then
// takes exclusive ownership.
func (lm *LockManager) LockWrite(varName string, version int) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	st := lm.state(lockKey(varName, version))
	for st.writer || st.readers > 0 {
		st.cond.Wait()
	}
	st.writer = true
}

// UnlockWrite releases exclusive ownership.
func (lm *LockManager) UnlockWrite(varName string, version int) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	st := lm.state(lockKey(varName, version))
	if !st.writer {
		panic("staging: UnlockWrite without LockWrite")
	}
	st.writer = false
	st.cond.Broadcast()
}

// Event announces that a version of a variable became available.
type Event struct {
	Var     string
	Version int
	Bytes   int64
}

// Notifier is a publish/subscribe hub over staging variables.
type Notifier struct {
	mu   sync.Mutex
	subs map[string][]chan Event
}

// NewNotifier creates an empty hub.
func NewNotifier() *Notifier {
	return &Notifier{subs: make(map[string][]chan Event)}
}

// Subscribe registers interest in a variable; events arrive on the
// returned channel (buffered by `depth`; an event is dropped for a
// subscriber whose buffer is full, so a slow consumer cannot stall
// publishers — the same decoupling the staging messaging layer provides).
func (n *Notifier) Subscribe(varName string, depth int) <-chan Event {
	if depth < 1 {
		depth = 16
	}
	ch := make(chan Event, depth)
	n.mu.Lock()
	defer n.mu.Unlock()
	n.subs[varName] = append(n.subs[varName], ch)
	return ch
}

// Publish delivers an event to every subscriber of the variable.
func (n *Notifier) Publish(ev Event) {
	n.mu.Lock()
	subs := append([]chan Event(nil), n.subs[ev.Var]...)
	n.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- ev:
		default: // drop for saturated subscribers
		}
	}
}

// CoordinatedSpace bundles a Space with locks and notifications, giving
// writers and readers the handoff protocol coupled workflows need.
type CoordinatedSpace struct {
	*Space
	Locks    *LockManager
	Notifier *Notifier
}

// NewCoordinatedSpace wraps a space with fresh coordination state.
func NewCoordinatedSpace(sp *Space) *CoordinatedSpace {
	return &CoordinatedSpace{Space: sp, Locks: NewLockManager(), Notifier: NewNotifier()}
}

// PutLocked writes a set of blocks of one version under the write lock and
// publishes a single notification when the version is complete.
func (cs *CoordinatedSpace) PutLocked(varName string, version int, blocks ...*field.BoxData) error {
	cs.Locks.LockWrite(varName, version)
	defer cs.Locks.UnlockWrite(varName, version)
	var bytes int64
	for _, b := range blocks {
		if err := cs.Space.Put(varName, version, b); err != nil {
			return err
		}
		bytes += b.Bytes()
	}
	cs.Notifier.Publish(Event{Var: varName, Version: version, Bytes: bytes})
	return nil
}
