// Durability layer (DESIGN.md §15): an optional per-space write-ahead log
// plus periodic snapshot compaction, so a staging server restarted over the
// same data directory recovers the shard it held at the crash instead of
// rejoining empty.
//
// The WAL reuses the journal package's record framing (recLen | body |
// CRC-32C, torn-tail tolerant) under an "XSW1" header that carries the
// server id and the tenant-aware key codec version. Every successful
// mutation appends one record — puts (with the full block payload), tenant
// quota settlements, drops, and clears — and is fsynced before the space
// acknowledges it: an acked put survives kill -9; a crash mid-append leaves
// a torn tail that recovery truncates, losing only the unacked write.
//
// Compaction bounds replay: every compactEvery records the space dumps its
// objects in canonical manifest order into snapshot.tmp, fsyncs, renames it
// over snapshot.xss, then rotates the WAL to a fresh epoch. Recovery loads
// the last complete snapshot (complete-or-absent by rename atomicity) and
// replays the WAL suffix past it, reconciled through the epoch counter:
// same epoch → skip the covered prefix; epoch+1 → replay everything. The
// replayed puts go through the same seq-idempotent put path the wire uses,
// so a record that races a compaction is applied at most once.
package staging

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"crosslayer/internal/field"
	"crosslayer/internal/grid"
	"crosslayer/internal/journal"
	"crosslayer/internal/obs"
)

// WAL failure modes.
var (
	// ErrBadWAL tags a structurally invalid WAL: a checksum-valid record
	// whose payload is not a valid WAL record. Unlike a torn tail this is
	// not survivable — the file was written by something else.
	ErrBadWAL = errors.New("staging: bad wal")
	// ErrBadSnapshot tags a structurally invalid or incomplete snapshot.
	// Snapshots are complete-or-absent by rename atomicity, so a partial
	// snapshot means external corruption and recovery fails closed.
	ErrBadSnapshot = errors.New("staging: bad snapshot")
	// ErrWALMismatch reports a data dir belonging to a different server id
	// or an incompatible key codec version.
	ErrWALMismatch = errors.New("staging: data dir belongs to a different server")
)

const (
	walMagic  = 0x58535731 // "XSW1"
	snapMagic = 0x58535331 // "XSS1"

	// walKeyCodec is the version of the wire-key namespace the log's keys
	// live in: 1 = tenant-aware keys ("tenant/var" qualification, "#rN"
	// replica suffixes). A mismatch fails recovery closed rather than
	// misfiling another codec's keys.
	walKeyCodec = 1

	walRecHeader = 1
	walRecPut    = 2
	walRecClear  = 3
	walRecDrop   = 4
	walRecSettle = 5

	snapRecHeader = 1
	snapRecObject = 2
	snapRecFooter = 3

	maxWALKey      = 4096
	maxWALServerID = 256

	walFileName  = "wal.xsw"
	snapFileName = "snapshot.xss"

	// defaultCompactEvery is how many WAL records accumulate before the
	// space compacts them into a snapshot and rotates the log.
	defaultCompactEvery = 512
)

// RecoverStats summarizes one Persist recovery pass.
type RecoverStats struct {
	SnapshotBlocks int   // objects loaded from the last complete snapshot
	WALRecords     int   // WAL records replayed past the snapshot
	Blocks         int   // objects live after recovery
	Bytes          int64 // data bytes live after recovery
	TornTail       bool  // the WAL ended mid-record; the tail was truncated
	WALMissing     bool  // a snapshot existed but no usable WAL did
}

// WALStats reports the durability layer's activity since Persist.
type WALStats struct {
	Records   uint64 // records appended
	Bytes     uint64 // framed bytes appended
	Fsyncs    uint64
	Snapshots uint64 // compactions performed
	Epoch     uint64 // current WAL epoch (bumped by each compaction)
}

// walCounters are the xlayer_staging_wal_* metric hooks. They live on the
// Space (not the durability handle) so a crash-restart cycle keeps
// incrementing the same registered instruments.
type walCounters struct {
	records, bytes, fsyncs, snapshots *obs.Counter
	recovered                         *obs.Gauge
}

// durability is the attached WAL: an append handle over dir/wal.xsw plus
// the compaction state. Callers hold the owning Space's opMu (shared for
// puts, exclusive for clear/drop/attach/detach); mu additionally
// serializes the appends of puts racing under the shared lock.
type durability struct {
	mu           sync.Mutex
	dir          string
	serverID     string
	f            *os.File
	epoch        uint64
	recs         uint64 // records in the current epoch's WAL file
	compactEvery uint64
	err          error // sticky: first append failure poisons the log
	stats        WALStats
	met          *walCounters
	space        *Space
}

// walRec is one decoded WAL (or snapshot object) record.
type walRec struct {
	typ         byte
	key         string
	version     int
	seq         int64
	data        *field.BoxData
	tenant      string
	bytesDelta  int64
	blocksDelta int
}

// Persist attaches a write-ahead log under dir to the space, first
// recovering whatever a previous incarnation left there: the last complete
// snapshot, then the WAL suffix past it, torn tail truncated. serverID is
// stamped into every file header; recovering a dir written under a
// different id (or key codec) fails closed with ErrWALMismatch. The space
// must be freshly constructed or Clear-ed: recovered state lands on top of
// whatever it holds.
func (sp *Space) Persist(dir, serverID string) (*RecoverStats, error) {
	if len(serverID) > maxWALServerID {
		return nil, fmt.Errorf("%w: server id %d bytes (max %d)", ErrBadWAL, len(serverID), maxWALServerID)
	}
	sp.opMu.Lock()
	defer sp.opMu.Unlock()
	if sp.dur != nil {
		return nil, errors.New("staging: space already persisted")
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("staging: wal dir: %w", err)
	}

	stats := &RecoverStats{}
	snapData, snapErr := os.ReadFile(filepath.Join(dir, snapFileName))
	if snapErr != nil && !errors.Is(snapErr, os.ErrNotExist) {
		return nil, fmt.Errorf("staging: read snapshot: %w", snapErr)
	}
	walData, walErr := os.ReadFile(filepath.Join(dir, walFileName))
	if walErr != nil && !errors.Is(walErr, os.ErrNotExist) {
		return nil, fmt.Errorf("staging: read wal: %w", walErr)
	}

	var snapEpoch, snapCovered uint64
	var snapObjs []walRec
	haveSnap := false
	if snapErr == nil {
		var err error
		snapEpoch, snapCovered, snapObjs, err = scanSnapshot(snapData, serverID)
		if err != nil {
			return nil, err
		}
		haveSnap = true
	}

	var ws *walScan
	haveWAL := false
	if walErr == nil {
		var err error
		ws, err = scanWAL(walData, serverID)
		if err != nil {
			return nil, err
		}
		// A WAL whose header never made it to disk provides nothing; treat
		// it as absent and start a fresh epoch below.
		haveWAL = ws.haveHeader
		stats.TornTail = ws.torn
	}

	// Reconcile snapshot and WAL through the epoch counter.
	var replay []walRec
	switch {
	case haveSnap && haveWAL:
		switch {
		case ws.epoch == snapEpoch:
			// Crash after the snapshot renamed but before the WAL rotated:
			// the snapshot covers the first snapCovered records.
			if snapCovered > uint64(len(ws.recs)) {
				return nil, fmt.Errorf("%w: snapshot covers %d wal records, wal has %d",
					ErrBadSnapshot, snapCovered, len(ws.recs))
			}
			replay = ws.recs[snapCovered:]
		case ws.epoch == snapEpoch+1:
			replay = ws.recs
		default:
			return nil, fmt.Errorf("%w: wal epoch %d does not follow snapshot epoch %d",
				ErrBadWAL, ws.epoch, snapEpoch)
		}
	case haveSnap:
		stats.WALMissing = true
	case haveWAL:
		if ws.epoch != 0 {
			return nil, fmt.Errorf("%w: wal epoch %d but no snapshot", ErrBadWAL, ws.epoch)
		}
		replay = ws.recs
	}

	for i := range snapObjs {
		if err := sp.applyRecovered(&snapObjs[i]); err != nil {
			return nil, err
		}
	}
	stats.SnapshotBlocks = len(snapObjs)
	for i := range replay {
		if err := sp.applyRecovered(&replay[i]); err != nil {
			return nil, err
		}
	}
	stats.WALRecords = len(replay)
	sp.recomputeUsageFromShards()
	stats.Blocks, stats.Bytes = sp.countLocked()

	d := &durability{
		dir: dir, serverID: serverID,
		compactEvery: defaultCompactEvery,
		met:          &sp.walMetrics,
		space:        sp,
	}
	if haveWAL {
		// Keep the surviving WAL, truncated past its torn tail, and append.
		f, err := os.OpenFile(filepath.Join(dir, walFileName), os.O_RDWR, 0o666)
		if err != nil {
			return nil, fmt.Errorf("staging: open wal: %w", err)
		}
		if err := f.Truncate(ws.good); err != nil {
			f.Close()
			return nil, fmt.Errorf("staging: truncate torn wal tail: %w", err)
		}
		if _, err := f.Seek(0, 2); err != nil {
			f.Close()
			return nil, fmt.Errorf("staging: seek wal: %w", err)
		}
		d.f, d.epoch, d.recs = f, ws.epoch, uint64(len(ws.recs))
	} else {
		epoch := uint64(0)
		if haveSnap {
			epoch = snapEpoch + 1
		}
		f, err := newWALFile(filepath.Join(dir, walFileName), serverID, epoch)
		if err != nil {
			return nil, err
		}
		d.f, d.epoch = f, epoch
	}
	if d.met.recovered != nil {
		d.met.recovered.Set(float64(stats.Blocks))
	}
	sp.dur = d
	return stats, nil
}

// Persisted reports whether a WAL is currently attached.
func (sp *Space) Persisted() bool {
	sp.opMu.RLock()
	defer sp.opMu.RUnlock()
	return sp.dur != nil
}

// WALStats reports the attached WAL's activity (zero when detached).
func (sp *Space) WALStats() WALStats {
	sp.opMu.RLock()
	defer sp.opMu.RUnlock()
	if sp.dur == nil {
		return WALStats{}
	}
	sp.dur.mu.Lock()
	defer sp.dur.mu.Unlock()
	st := sp.dur.stats
	st.Epoch = sp.dur.epoch
	return st
}

// SyncWAL fsyncs the attached WAL (a no-op when detached: appends already
// sync record by record, this flushes any pending OS state on demand).
func (sp *Space) SyncWAL() error {
	sp.opMu.Lock()
	defer sp.opMu.Unlock()
	if sp.dur == nil {
		return nil
	}
	if sp.dur.err != nil {
		return sp.dur.err
	}
	return sp.dur.sync()
}

// CompactWAL forces a snapshot compaction: the space's objects are dumped
// in canonical manifest order to a fresh snapshot and the WAL rotates to a
// new epoch.
func (sp *Space) CompactWAL() error {
	sp.opMu.Lock()
	defer sp.opMu.Unlock()
	if sp.dur == nil {
		return errors.New("staging: space not persisted")
	}
	if sp.dur.err != nil {
		return sp.dur.err
	}
	return sp.dur.compact()
}

// ClosePersist flushes and fsyncs the WAL, closes it, and detaches the
// durability layer — the graceful-shutdown half. The space keeps its
// in-memory contents; a later Persist over the same dir recovers them.
func (sp *Space) ClosePersist() error {
	sp.opMu.Lock()
	defer sp.opMu.Unlock()
	d := sp.dur
	if d == nil {
		return nil
	}
	sp.dur = nil
	if d.err != nil {
		d.f.Close()
		return d.err
	}
	if err := d.sync(); err != nil {
		d.f.Close()
		return err
	}
	return d.f.Close()
}

// CrashPersist abruptly detaches the WAL without flushing — the kill -9
// half, used by the chaos harness's restart action and crash tests. The
// on-disk state is whatever the last fsync made durable.
func (sp *Space) CrashPersist() {
	sp.opMu.Lock()
	defer sp.opMu.Unlock()
	if sp.dur != nil {
		sp.dur.f.Close()
		sp.dur = nil
	}
}

// ObserveWAL registers the xlayer_staging_wal_* instruments on reg and
// back-fills them with activity so far. Counters keep incrementing across
// a CrashPersist/Persist restart cycle.
func (sp *Space) ObserveWAL(reg *obs.Registry) {
	sp.opMu.Lock()
	defer sp.opMu.Unlock()
	m := &sp.walMetrics
	m.records = reg.Counter("xlayer_staging_wal_records_total", "WAL records appended")
	m.bytes = reg.Counter("xlayer_staging_wal_bytes_total", "framed WAL bytes appended")
	m.fsyncs = reg.Counter("xlayer_staging_wal_fsyncs_total", "WAL fsync calls")
	m.snapshots = reg.Counter("xlayer_staging_wal_snapshots_total", "snapshot compactions")
	m.recovered = reg.Gauge("xlayer_staging_wal_recovered_blocks", "blocks recovered by the last Persist")
	if d := sp.dur; d != nil {
		m.records.Add(float64(d.stats.Records))
		m.bytes.Add(float64(d.stats.Bytes))
		m.fsyncs.Add(float64(d.stats.Fsyncs))
		m.snapshots.Add(float64(d.stats.Snapshots))
	}
}

// applyRecovered replays one recovered record into the shards, bypassing
// tenant admission (usage is recomputed from the final object set).
func (sp *Space) applyRecovered(r *walRec) error {
	switch r.typ {
	case walRecPut: // also snapRecObject: the numeric values coincide
		_, _, err := sp.route(r.data.Box).put(&Object{Var: r.key, Version: r.version, Seq: r.seq, Data: r.data})
		if err != nil {
			return fmt.Errorf("staging: replay put %s@%d: %w", r.key, r.version, err)
		}
	case walRecClear:
		for _, s := range sp.servers {
			s.mu.Lock()
			s.objects = make(map[string][]*Object)
			s.memUsed = 0
			s.mu.Unlock()
		}
	case walRecDrop:
		for _, s := range sp.servers {
			s.dropBefore(r.key, r.version)
		}
	case walRecSettle:
		// Settlements are an audit trail; recovery derives tenant usage
		// from the recovered objects instead of replaying deltas, so a
		// settle torn off after its put cannot skew the accounting.
	}
	return nil
}

// recomputeUsageFromShards rebuilds per-tenant accounting from the object
// set — the authoritative source after a replay.
func (sp *Space) recomputeUsageFromShards() {
	usage := make(map[string]*tenantUsage)
	for _, s := range sp.servers {
		s.mu.Lock()
		for _, objs := range s.objects {
			for _, o := range objs {
				if t := TenantOf(o.Var); t != "" {
					u := usage[t]
					if u == nil {
						u = &tenantUsage{}
						usage[t] = u
					}
					u.bytes += o.Data.Bytes()
					u.blocks++
				}
			}
		}
		s.mu.Unlock()
	}
	sp.qmu.Lock()
	if len(usage) > 0 || sp.usage != nil {
		sp.usage = usage
	}
	sp.qmu.Unlock()
}

// ContentManifest recomputes the space's manifest from the objects it
// actually holds — what a recovered server advertises on rejoin so the
// pool can repair the diff instead of re-putting everything.
func (sp *Space) ContentManifest() Manifest {
	m, _ := sp.ContentManifestSized()
	return m
}

// ContentManifestSized is ContentManifest plus each entry's total encoded
// payload bytes, aligned with the (sorted) entries. The sizes let the
// repair pass verify byte totals, not just block counts, before skipping
// a shipment.
func (sp *Space) ContentManifestSized() (Manifest, []int64) {
	type agg struct {
		blocks int
		bytes  int64
	}
	sums := make(map[ManifestEntry]*agg)
	for _, s := range sp.servers {
		s.mu.Lock()
		for _, objs := range s.objects {
			for _, o := range objs {
				k := ManifestEntry{Var: o.Var, Version: o.Version}
				a := sums[k]
				if a == nil {
					a = &agg{}
					sums[k] = a
				}
				a.blocks++
				a.bytes += EncodedSize(o.Data)
			}
		}
		s.mu.Unlock()
	}
	var m Manifest
	for k, a := range sums {
		k.Blocks = a.blocks
		m.Entries = append(m.Entries, k)
	}
	sortEntries(m.Entries)
	sizes := make([]int64, len(m.Entries))
	for i, e := range m.Entries {
		e.Blocks = 0
		sizes[i] = sums[e].bytes
	}
	return m, sizes
}

// countLocked totals live objects and bytes (caller holds opMu).
func (sp *Space) countLocked() (blocks int, size int64) {
	for _, s := range sp.servers {
		s.mu.Lock()
		for _, objs := range s.objects {
			blocks += len(objs)
			for _, o := range objs {
				size += o.Data.Bytes()
			}
		}
		s.mu.Unlock()
	}
	return blocks, size
}

// ---- append side ----

// logPut appends one put record (and, for tenant-qualified keys, the quota
// settlement that followed it) and fsyncs. Called with opMu held shared;
// appends themselves serialize on the file via the space's durability
// invariant that mutators hold opMu.
func (d *durability) logPut(key string, version int, seq int64, data *field.BoxData, tenant string, bytesDelta int64, blocksDelta int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.err != nil {
		return d.err
	}
	body := []byte{walRecPut}
	body = journal.AppendString(body, key)
	body = binary.BigEndian.AppendUint64(body, uint64(int64(version)))
	body = binary.BigEndian.AppendUint64(body, uint64(seq))
	var buf bytes.Buffer
	if err := EncodeBlock(&buf, data); err != nil {
		d.err = fmt.Errorf("staging: wal encode block: %w", err)
		return d.err
	}
	body = append(body, buf.Bytes()...)
	recs := [][]byte{body}
	if tenant != "" {
		settle := []byte{walRecSettle}
		settle = journal.AppendString(settle, tenant)
		settle = binary.BigEndian.AppendUint64(settle, uint64(bytesDelta))
		settle = binary.BigEndian.AppendUint64(settle, uint64(int64(blocksDelta)))
		recs = append(recs, settle)
	}
	return d.append(recs...)
}

func (d *durability) logClear() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.err != nil {
		return d.err
	}
	return d.append([]byte{walRecClear})
}

func (d *durability) logDrop(varName string, version int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.err != nil {
		return d.err
	}
	body := []byte{walRecDrop}
	body = journal.AppendString(body, varName)
	body = binary.BigEndian.AppendUint64(body, uint64(int64(version)))
	return d.append(body)
}

// append frames and writes the record bodies, fsyncs once, and triggers a
// compaction when the epoch's record count crosses the threshold. The
// first failure sticks.
func (d *durability) append(bodies ...[]byte) error {
	for _, body := range bodies {
		framed := journal.FrameRecord(body)
		if _, err := d.f.Write(framed); err != nil {
			d.err = fmt.Errorf("staging: wal write: %w", err)
			return d.err
		}
		d.recs++
		d.stats.Records++
		d.stats.Bytes += uint64(len(framed))
		if d.met.records != nil {
			d.met.records.Inc()
			d.met.bytes.Add(float64(len(framed)))
		}
	}
	if err := d.sync(); err != nil {
		return err
	}
	if d.recs >= d.compactEvery {
		return d.compact()
	}
	return nil
}

func (d *durability) sync() error {
	if err := d.f.Sync(); err != nil {
		d.err = fmt.Errorf("staging: wal sync: %w", err)
		return d.err
	}
	d.stats.Fsyncs++
	if d.met.fsyncs != nil {
		d.met.fsyncs.Inc()
	}
	return nil
}

// compact dumps the space in canonical manifest order into a fresh
// snapshot (atomically renamed over the old one) and rotates the WAL to
// the next epoch. Crash windows are covered by recovery's epoch
// reconciliation: after the snapshot renames but before the WAL rotates,
// the snapshot's covered-record count skips the replayed prefix.
func (d *durability) compact() error {
	objs := d.space.dumpObjects()
	covered := d.recs

	tmp := filepath.Join(d.dir, "snapshot.tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o666)
	if err != nil {
		d.err = fmt.Errorf("staging: snapshot create: %w", err)
		return d.err
	}
	write := func(body []byte) {
		if err == nil {
			_, err = f.Write(journal.FrameRecord(body))
		}
	}
	hdr := []byte{snapRecHeader}
	hdr = binary.BigEndian.AppendUint32(hdr, snapMagic)
	hdr = binary.BigEndian.AppendUint16(hdr, walKeyCodec)
	hdr = journal.AppendString(hdr, d.serverID)
	hdr = binary.BigEndian.AppendUint64(hdr, d.epoch)
	hdr = binary.BigEndian.AppendUint64(hdr, covered)
	write(hdr)
	for _, o := range objs {
		body := []byte{snapRecObject}
		body = journal.AppendString(body, o.Var)
		body = binary.BigEndian.AppendUint64(body, uint64(int64(o.Version)))
		body = binary.BigEndian.AppendUint64(body, uint64(o.Seq))
		var buf bytes.Buffer
		if err == nil {
			err = EncodeBlock(&buf, o.Data)
		}
		body = append(body, buf.Bytes()...)
		write(body)
	}
	foot := []byte{snapRecFooter}
	foot = binary.BigEndian.AppendUint64(foot, uint64(len(objs)))
	write(foot)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, filepath.Join(d.dir, snapFileName))
	}
	if err != nil {
		d.err = fmt.Errorf("staging: snapshot: %w", err)
		return d.err
	}
	syncDir(d.dir)

	// Rotate the WAL: a fresh file with the next epoch's header, renamed
	// over the old one; the still-open handle follows the rename.
	nf, err := newWALFile(filepath.Join(d.dir, walFileName), d.serverID, d.epoch+1)
	if err != nil {
		d.err = err
		return d.err
	}
	d.f.Close()
	d.f = nf
	d.epoch++
	d.recs = 0
	d.stats.Snapshots++
	if d.met.snapshots != nil {
		d.met.snapshots.Inc()
	}
	return nil
}

// dumpObjects snapshots every live object, sorted canonically: by key,
// version, block Morton position, then seq.
func (sp *Space) dumpObjects() []*Object {
	var out []*Object
	for _, s := range sp.servers {
		s.mu.Lock()
		for _, objs := range s.objects {
			out = append(out, objs...)
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Var != b.Var {
			return a.Var < b.Var
		}
		if a.Version != b.Version {
			return a.Version < b.Version
		}
		ma := grid.MortonCode(a.Data.Box.Lo.Sub(sp.domain.Lo).Max(grid.Zero))
		mb := grid.MortonCode(b.Data.Box.Lo.Sub(sp.domain.Lo).Max(grid.Zero))
		if ma != mb {
			return ma < mb
		}
		return a.Seq < b.Seq
	})
	return out
}

// newWALFile writes a fresh WAL with its header record via tmp + rename,
// so a crash mid-creation never leaves a headerless file in place.
func newWALFile(path, serverID string, epoch uint64) (*os.File, error) {
	dir := filepath.Dir(path)
	tmp := filepath.Join(dir, "wal.tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o666)
	if err != nil {
		return nil, fmt.Errorf("staging: wal create: %w", err)
	}
	hdr := []byte{walRecHeader}
	hdr = binary.BigEndian.AppendUint32(hdr, walMagic)
	hdr = binary.BigEndian.AppendUint16(hdr, walKeyCodec)
	hdr = journal.AppendString(hdr, serverID)
	hdr = binary.BigEndian.AppendUint64(hdr, epoch)
	if _, err := f.Write(journal.FrameRecord(hdr)); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("staging: wal header: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		f.Close()
		return nil, fmt.Errorf("staging: wal rotate: %w", err)
	}
	syncDir(dir)
	return f, nil
}

func syncDir(dir string) {
	// Directory fsync makes the renames durable; best-effort on platforms
	// where directories reject Sync.
	if df, err := os.Open(dir); err == nil {
		df.Sync()
		df.Close()
	}
}

// ---- scan side ----

type walScan struct {
	haveHeader bool
	epoch      uint64
	recs       []walRec
	good       int64 // valid record prefix length (truncate point)
	torn       bool
}

// scanWAL walks a WAL image, tolerating a torn tail. Structural defects
// inside checksum-valid records fail with ErrBadWAL; an identity mismatch
// fails with ErrWALMismatch.
func scanWAL(data []byte, serverID string) (*walScan, error) {
	ws := &walScan{}
	off := 0
	for off < len(data) {
		body, n, ok := journal.NextRecord(data[off:])
		if !ok {
			ws.torn = true
			break
		}
		if !ws.haveHeader {
			epoch, err := decodeWALHeader(body, serverID)
			if err != nil {
				return nil, err
			}
			ws.haveHeader, ws.epoch = true, epoch
		} else {
			rec, err := decodeWALRecord(body)
			if err != nil {
				return nil, err
			}
			ws.recs = append(ws.recs, rec)
		}
		off += n
	}
	ws.good = int64(off)
	if !ws.haveHeader && off < len(data) {
		ws.torn = true
	}
	return ws, nil
}

func decodeWALHeader(body []byte, serverID string) (epoch uint64, err error) {
	d := journal.NewDec(body, ErrBadWAL)
	if t := d.U8(); d.Err() == nil && t != walRecHeader {
		return 0, fmt.Errorf("%w: first record has type %d (want header)", ErrBadWAL, t)
	}
	if m := d.U32(); d.Err() == nil && m != walMagic {
		return 0, fmt.Errorf("%w: bad magic", ErrBadWAL)
	}
	if v := d.U16(); d.Err() == nil && v != walKeyCodec {
		return 0, fmt.Errorf("%w: key codec version %d (have %d)", ErrWALMismatch, v, walKeyCodec)
	}
	id := d.Str(maxWALServerID)
	epoch = d.U64()
	if err := d.Done(); err != nil {
		return 0, err
	}
	if id != serverID {
		return 0, fmt.Errorf("%w: wal written by %q, recovering as %q", ErrWALMismatch, id, serverID)
	}
	return epoch, nil
}

func decodeWALRecord(body []byte) (walRec, error) {
	d := journal.NewDec(body, ErrBadWAL)
	rec := walRec{typ: d.U8()}
	switch rec.typ {
	case walRecPut:
		var err error
		rec.key, rec.version, rec.seq, rec.data, err = decodeKeyedBlock(d)
		if err != nil {
			return walRec{}, err
		}
		return rec, nil
	case walRecClear:
		if err := d.Done(); err != nil {
			return walRec{}, err
		}
		return rec, nil
	case walRecDrop:
		rec.key = d.Str(maxWALKey)
		rec.version = decodeWALVersion(d)
		if err := d.Done(); err != nil {
			return walRec{}, err
		}
		if rec.key == "" && d.Err() == nil {
			return walRec{}, fmt.Errorf("%w: empty drop var", ErrBadWAL)
		}
		return rec, nil
	case walRecSettle:
		rec.tenant = d.Str(maxTenantLen)
		rec.bytesDelta = d.I64()
		blocks := d.I64()
		if err := d.Done(); err != nil {
			return walRec{}, err
		}
		if !ValidTenant(rec.tenant) {
			return walRec{}, fmt.Errorf("%w: bad settle tenant", ErrBadWAL)
		}
		if blocks < -journal.MaxSmallInt || blocks > journal.MaxSmallInt {
			return walRec{}, fmt.Errorf("%w: settle block delta %d out of range", ErrBadWAL, blocks)
		}
		rec.blocksDelta = int(blocks)
		return rec, nil
	case walRecHeader:
		return walRec{}, fmt.Errorf("%w: duplicate header record", ErrBadWAL)
	default:
		return walRec{}, fmt.Errorf("%w: unknown record type %d", ErrBadWAL, rec.typ)
	}
}

// decodeWALVersion reads a version carried as int64 bits and range-checks
// it into the manifest codec's value space.
func decodeWALVersion(d *journal.Dec) int {
	v := d.I64()
	if d.Err() == nil && (v < 0 || v > journal.MaxSmallInt) {
		d.Fail("version %d out of range", v)
		return 0
	}
	return int(v)
}

// decodeKeyedBlock reads the shared tail of put and snapshot-object
// records: key, version, seq, then the block payload (which must consume
// the rest of the record exactly).
func decodeKeyedBlock(d *journal.Dec) (key string, version int, seq int64, data *field.BoxData, err error) {
	key = d.Str(maxWALKey)
	version = decodeWALVersion(d)
	seq = d.I64()
	rest := d.Rest()
	if err = d.Err(); err != nil {
		return "", 0, 0, nil, err
	}
	if key == "" {
		return "", 0, 0, nil, fmt.Errorf("%w: empty key", ErrBadWAL)
	}
	r := bytes.NewReader(rest)
	data, err = DecodeBlock(r)
	if err != nil {
		return "", 0, 0, nil, fmt.Errorf("%w: block payload: %v", ErrBadWAL, err)
	}
	if r.Len() != 0 {
		return "", 0, 0, nil, fmt.Errorf("%w: %d trailing block bytes", ErrBadWAL, r.Len())
	}
	return key, version, seq, data, nil
}

// scanSnapshot decodes a snapshot image. Snapshots are complete-or-absent
// (tmp + rename), so anything short of header + objects + matching footer
// with no trailing bytes fails closed with ErrBadSnapshot.
func scanSnapshot(data []byte, serverID string) (epoch, covered uint64, objs []walRec, err error) {
	off := 0
	sawHeader, sawFooter := false, false
	for off < len(data) {
		body, n, ok := journal.NextRecord(data[off:])
		if !ok {
			return 0, 0, nil, fmt.Errorf("%w: torn record at byte %d", ErrBadSnapshot, off)
		}
		if sawFooter {
			return 0, 0, nil, fmt.Errorf("%w: record after footer", ErrBadSnapshot)
		}
		d := journal.NewDec(body, ErrBadSnapshot)
		typ := d.U8()
		switch {
		case !sawHeader:
			if d.Err() == nil && typ != snapRecHeader {
				return 0, 0, nil, fmt.Errorf("%w: first record has type %d (want header)", ErrBadSnapshot, typ)
			}
			if m := d.U32(); d.Err() == nil && m != snapMagic {
				return 0, 0, nil, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
			}
			if v := d.U16(); d.Err() == nil && v != walKeyCodec {
				return 0, 0, nil, fmt.Errorf("%w: key codec version %d (have %d)", ErrWALMismatch, v, walKeyCodec)
			}
			id := d.Str(maxWALServerID)
			epoch = d.U64()
			covered = d.U64()
			if err := d.Done(); err != nil {
				return 0, 0, nil, err
			}
			if id != serverID {
				return 0, 0, nil, fmt.Errorf("%w: snapshot written by %q, recovering as %q", ErrWALMismatch, id, serverID)
			}
			sawHeader = true
		case typ == snapRecObject:
			var rec walRec
			rec.typ = snapRecObject
			var derr error
			rec.key, rec.version, rec.seq, rec.data, derr = decodeKeyedBlock(d)
			if derr != nil {
				return 0, 0, nil, fmt.Errorf("%w: %v", ErrBadSnapshot, derr)
			}
			objs = append(objs, rec)
		case typ == snapRecFooter:
			count := d.U64()
			if err := d.Done(); err != nil {
				return 0, 0, nil, err
			}
			if count != uint64(len(objs)) {
				return 0, 0, nil, fmt.Errorf("%w: footer counts %d objects, snapshot has %d", ErrBadSnapshot, count, len(objs))
			}
			sawFooter = true
		default:
			if d.Err() != nil {
				return 0, 0, nil, d.Err()
			}
			return 0, 0, nil, fmt.Errorf("%w: unknown record type %d", ErrBadSnapshot, typ)
		}
		off += n
	}
	if !sawHeader || !sawFooter {
		return 0, 0, nil, fmt.Errorf("%w: incomplete snapshot (header %v, footer %v)", ErrBadSnapshot, sawHeader, sawFooter)
	}
	if off != len(data) {
		return 0, 0, nil, fmt.Errorf("%w: %d trailing bytes", ErrBadSnapshot, len(data)-off)
	}
	return epoch, covered, objs, nil
}
