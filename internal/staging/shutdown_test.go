package staging

import (
	"net"
	"testing"
	"time"

	"crosslayer/internal/grid"
)

// TestShutdownDrainsInFlightAndFsyncs pins the graceful-shutdown contract
// behind `xlayer serve`'s SIGTERM path: a request already being served when
// Shutdown begins runs to completion with its response delivered and its
// WAL record fsynced, Shutdown returns only after the handler exits, and
// the closed data dir recovers the drained put. The in-flight handler is
// held open with ServerOptions.RequestHook.
func TestShutdownDrainsInFlightAndFsyncs(t *testing.T) {
	dir := t.TempDir()
	space := NewSpace(1, 0, dom())
	hold := make(chan struct{})
	entered := make(chan struct{}, 1)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ln, space, ServerOptions{
		DataDir:  dir,
		ServerID: "s0",
		RequestHook: func(op byte) {
			if op == opPut {
				entered <- struct{}{}
				<-hold
			}
		},
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}

	c := NewClient(srv.Addr(), ClientOptions{MaxRetries: -1, OpTimeout: 5 * time.Second})
	defer c.Close()
	putErr := make(chan error, 1)
	go func() { putErr <- c.Put("rho", 0, block(grid.IV(0, 0, 0), 8, 1.5)) }()
	<-entered // the handler is now mid-request, parked on the hook

	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- srv.Shutdown() }()
	for !srv.draining.Load() {
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-shutdownErr:
		t.Fatalf("Shutdown returned (%v) while a handler was still in flight", err)
	case <-time.After(20 * time.Millisecond):
	}

	close(hold) // the drain can finish now
	if err := <-putErr; err != nil {
		t.Fatalf("in-flight put severed by graceful shutdown: %v", err)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if space.Persisted() {
		t.Fatal("Shutdown left the WAL attached")
	}
	if err := srv.Shutdown(); err != nil {
		t.Fatalf("second Shutdown not idempotent: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close after Shutdown not a no-op: %v", err)
	}

	// The drained put must be on disk: a fresh incarnation recovers it.
	sp2 := NewSpace(1, 0, dom())
	st, err := sp2.Persist(dir, "s0")
	if err != nil {
		t.Fatalf("recover after graceful shutdown: %v", err)
	}
	if st.TornTail || st.Blocks != 1 {
		t.Fatalf("recovered stats = %+v, want 1 block and no torn tail", st)
	}
	sp2.CrashPersist()
}

// TestShutdownInterruptsIdleConnections pins the other half of the drain: a
// connection with no request in flight is released immediately — Shutdown
// must not wait for a client that is merely holding its socket open.
func TestShutdownInterruptsIdleConnections(t *testing.T) {
	dir := t.TempDir()
	space := NewSpace(1, 0, dom())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ln, space, ServerOptions{DataDir: dir, ServerID: "s0"})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	c := NewClient(srv.Addr(), ClientOptions{MaxRetries: -1, OpTimeout: 2 * time.Second})
	defer c.Close()
	// One served request establishes the connection, which then idles.
	if err := c.Put("rho", 0, block(grid.IV(0, 0, 0), 8, 2)); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Shutdown() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown hung on an idle connection")
	}
}
