package staging

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"crosslayer/internal/field"
	"crosslayer/internal/grid"
)

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := field.New(grid.NewBox(grid.IV(-3, 2, 5), grid.IV(4, 9, 12)), 3)
	for c := 0; c < 3; c++ {
		for i := range d.Comp(c) {
			d.Comp(c)[i] = rng.NormFloat64()
		}
	}
	var buf bytes.Buffer
	if err := EncodeBlock(&buf, d); err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != EncodedSize(d) {
		t.Errorf("encoded %d bytes, EncodedSize says %d", buf.Len(), EncodedSize(d))
	}
	got, err := DecodeBlock(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(d) {
		t.Error("round trip lost data")
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	if _, err := DecodeBlock(bytes.NewReader(make([]byte, 64))); !errors.Is(err, ErrBadBlock) {
		t.Errorf("garbage decode err = %v", err)
	}
	var buf bytes.Buffer
	if err := EncodeBlock(&buf, nil); !errors.Is(err, ErrBadBlock) {
		t.Errorf("nil encode err = %v", err)
	}
	// Truncated stream: header ok, payload missing.
	d := field.New(grid.BoxFromSize(grid.IV(0, 0, 0), grid.IV(4, 4, 4)), 1)
	buf.Reset()
	if err := EncodeBlock(&buf, d); err != nil {
		t.Fatal(err)
	}
	trunc := bytes.NewReader(buf.Bytes()[:buf.Len()-8])
	if _, err := DecodeBlock(trunc); err == nil {
		t.Error("truncated decode succeeded")
	}
}

func TestCodecRejectsAbsurdHeader(t *testing.T) {
	// A header claiming a gigantic box must be rejected before allocation.
	d := field.New(grid.BoxFromSize(grid.IV(0, 0, 0), grid.IV(2, 2, 2)), 1)
	var buf bytes.Buffer
	if err := EncodeBlock(&buf, d); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// hi.X at offset 4+3*4: bump it enormously
	raw[16] = 0xff
	raw[17] = 0xff
	raw[18] = 0xff
	raw[19] = 0x0f
	if _, err := DecodeBlock(bytes.NewReader(raw)); !errors.Is(err, ErrBadBlock) {
		t.Errorf("absurd box err = %v", err)
	}
}

func startServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	sp := NewSpace(4, 0, dom())
	srv, err := Serve("127.0.0.1:0", sp)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return srv, cl
}

func TestTCPPutGetRoundTrip(t *testing.T) {
	_, cl := startServer(t)
	d := block(grid.IV(8, 8, 8), 8, 3.5)
	if err := cl.Put("rho", 2, d); err != nil {
		t.Fatal(err)
	}
	blocks, err := cl.GetBlocks("rho", 2, dom())
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 1 || !blocks[0].Equal(d) {
		t.Fatal("remote round trip lost data")
	}
}

func TestTCPNotFound(t *testing.T) {
	_, cl := startServer(t)
	if _, err := cl.GetBlocks("nope", 0, dom()); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
}

func TestTCPNoMemory(t *testing.T) {
	sp := NewSpace(1, 100, dom()) // tiny capacity
	srv, err := Serve("127.0.0.1:0", sp)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Put("rho", 0, block(grid.IV(0, 0, 0), 8, 1)); !errors.Is(err, ErrNoMemory) {
		t.Errorf("err = %v", err)
	}
}

func TestTCPDropAndStat(t *testing.T) {
	_, cl := startServer(t)
	d := block(grid.IV(0, 0, 0), 4, 1)
	want := d.Bytes()
	for v := 0; v < 3; v++ {
		if err := cl.Put("rho", v, block(grid.IV(0, 0, 0), 4, 1)); err != nil {
			t.Fatal(err)
		}
	}
	used, err := cl.MemUsed()
	if err != nil || used != 3*want {
		t.Fatalf("MemUsed = %d, %v; want %d", used, err, 3*want)
	}
	freed, err := cl.DropBefore("rho", 2)
	if err != nil || freed != 2*want {
		t.Fatalf("DropBefore freed %d, %v; want %d", freed, err, 2*want)
	}
	if _, err := cl.GetBlocks("rho", 0, dom()); !errors.Is(err, ErrNotFound) {
		t.Error("dropped version still present")
	}
	if _, err := cl.GetBlocks("rho", 2, dom()); err != nil {
		t.Error("surviving version lost")
	}
}

func TestTCPManyClientsConcurrent(t *testing.T) {
	srv, _ := startServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for i := 0; i < 10; i++ {
				lo := grid.IV((w*8)%56, (i*4)%56, 0)
				if err := cl.Put("v", i, block(lo, 4, float64(w))); err != nil {
					errs <- err
					return
				}
				if _, err := cl.GetBlocks("v", i, dom()); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestTCPSharedClientConcurrent(t *testing.T) {
	_, cl := startServer(t)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if err := cl.Put("s", w*100+i, block(grid.IV(0, 0, 0), 4, 1)); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	used, err := cl.MemUsed()
	if err != nil || used == 0 {
		t.Fatalf("MemUsed after concurrent puts: %d, %v", used, err)
	}
}

func TestServerCloseUnblocksAccept(t *testing.T) {
	sp := NewSpace(1, 0, dom())
	srv, err := Serve("127.0.0.1:0", sp)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := Dial(srv.Addr()); err == nil {
		t.Error("dial succeeded after Close")
	}
}

func TestCodecQuickRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 60; i++ {
		lo := grid.IV(rng.Intn(20)-10, rng.Intn(20)-10, rng.Intn(20)-10)
		size := grid.IV(rng.Intn(6)+1, rng.Intn(6)+1, rng.Intn(6)+1)
		ncomp := rng.Intn(4) + 1
		d := field.New(grid.BoxFromSize(lo, size), ncomp)
		for c := 0; c < ncomp; c++ {
			for j := range d.Comp(c) {
				d.Comp(c)[j] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(20)-10))
			}
		}
		var buf bytes.Buffer
		if err := EncodeBlock(&buf, d); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeBlock(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(d) {
			t.Fatalf("round trip lost data for box %v ncomp %d", d.Box, ncomp)
		}
	}
}

func TestCodecSpecialFloats(t *testing.T) {
	d := field.New(grid.BoxFromSize(grid.IV(0, 0, 0), grid.IV(2, 1, 1)), 1)
	d.Comp(0)[0] = math.Inf(1)
	d.Comp(0)[1] = math.Copysign(0, -1) // -0.0
	var buf bytes.Buffer
	if err := EncodeBlock(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBlock(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got.Comp(0)[0], 1) {
		t.Error("+Inf not preserved")
	}
	if math.Signbit(got.Comp(0)[1]) != true || got.Comp(0)[1] != 0 {
		t.Error("-0.0 not preserved bit-exactly")
	}
}
