package staging

import (
	"errors"
	"sync"
	"testing"

	"crosslayer/internal/field"
	"crosslayer/internal/grid"
)

func dom() grid.Box { return grid.NewBox(grid.IV(0, 0, 0), grid.IV(63, 63, 63)) }

func block(lo grid.IntVect, n int, val float64) *field.BoxData {
	d := field.New(grid.BoxFromSize(lo, grid.IV(n, n, n)), 1)
	d.FillAll(val)
	return d
}

func TestPutGetRoundTrip(t *testing.T) {
	sp := NewSpace(4, 0, dom())
	if err := sp.Put("rho", 0, block(grid.IV(0, 0, 0), 8, 1)); err != nil {
		t.Fatal(err)
	}
	if err := sp.Put("rho", 0, block(grid.IV(8, 0, 0), 8, 2)); err != nil {
		t.Fatal(err)
	}
	got, err := sp.Get("rho", 0, grid.NewBox(grid.IV(4, 0, 0), grid.IV(11, 7, 7)))
	if err != nil {
		t.Fatal(err)
	}
	if v := got.Get(grid.IV(4, 0, 0), 0); v != 1 {
		t.Errorf("left region = %v", v)
	}
	if v := got.Get(grid.IV(11, 0, 0), 0); v != 2 {
		t.Errorf("right region = %v", v)
	}
}

func TestGetMissingVersion(t *testing.T) {
	sp := NewSpace(2, 0, dom())
	sp.Put("rho", 0, block(grid.IV(0, 0, 0), 4, 1))
	if _, err := sp.Get("rho", 1, dom()); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing version err = %v", err)
	}
	if _, err := sp.Get("u", 0, dom()); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing var err = %v", err)
	}
	if _, err := sp.Get("rho", 0, grid.NewBox(grid.IV(40, 40, 40), grid.IV(41, 41, 41))); !errors.Is(err, ErrNotFound) {
		t.Errorf("disjoint region err = %v", err)
	}
}

func TestVersionsIsolated(t *testing.T) {
	sp := NewSpace(2, 0, dom())
	sp.Put("rho", 0, block(grid.IV(0, 0, 0), 4, 1))
	sp.Put("rho", 1, block(grid.IV(0, 0, 0), 4, 9))
	got, err := sp.Get("rho", 0, grid.BoxFromSize(grid.IV(0, 0, 0), grid.IV(4, 4, 4)))
	if err != nil {
		t.Fatal(err)
	}
	if v := got.Get(grid.IV(0, 0, 0), 0); v != 1 {
		t.Errorf("version 0 contaminated: %v", v)
	}
}

func TestGetBlocks(t *testing.T) {
	sp := NewSpace(4, 0, dom())
	sp.Put("rho", 0, block(grid.IV(0, 0, 0), 8, 1))
	sp.Put("rho", 0, block(grid.IV(32, 32, 32), 8, 2))
	blocks, err := sp.GetBlocks("rho", 0, dom())
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 2 {
		t.Fatalf("got %d blocks", len(blocks))
	}
	// narrow region returns only the intersecting block
	blocks, err = sp.GetBlocks("rho", 0, grid.BoxFromSize(grid.IV(0, 0, 0), grid.IV(4, 4, 4)))
	if err != nil || len(blocks) != 1 {
		t.Fatalf("narrow query: %d blocks, err %v", len(blocks), err)
	}
}

func TestMemoryAccountingAndExhaustion(t *testing.T) {
	blockBytes := int64(4*4*4) * 8
	sp := NewSpace(1, blockBytes+1, dom()) // room for exactly one block
	if err := sp.Put("rho", 0, block(grid.IV(0, 0, 0), 4, 1)); err != nil {
		t.Fatal(err)
	}
	if got := sp.MemUsed(); got != blockBytes {
		t.Errorf("MemUsed = %d, want %d", got, blockBytes)
	}
	err := sp.Put("rho", 0, block(grid.IV(8, 0, 0), 4, 1))
	if !errors.Is(err, ErrNoMemory) {
		t.Errorf("expected ErrNoMemory, got %v", err)
	}
}

func TestDropBeforeFreesMemory(t *testing.T) {
	sp := NewSpace(2, 0, dom())
	for v := 0; v < 3; v++ {
		sp.Put("rho", v, block(grid.IV(0, 0, 0), 4, 1))
		sp.Put("rho", v, block(grid.IV(32, 32, 32), 4, 1))
	}
	used := sp.MemUsed()
	freed := sp.DropBefore("rho", 2)
	if freed != used*2/3 {
		t.Errorf("freed %d, want %d", freed, used*2/3)
	}
	if _, err := sp.Get("rho", 0, dom()); !errors.Is(err, ErrNotFound) {
		t.Error("version 0 survived DropBefore")
	}
	if _, err := sp.Get("rho", 2, dom()); err != nil {
		t.Error("version 2 was evicted")
	}
}

func TestDropBeforeOtherVarUntouched(t *testing.T) {
	sp := NewSpace(1, 0, dom())
	sp.Put("rho", 0, block(grid.IV(0, 0, 0), 4, 1))
	sp.Put("u", 0, block(grid.IV(0, 0, 0), 4, 2))
	sp.DropBefore("rho", 5)
	if _, err := sp.Get("u", 0, dom()); err != nil {
		t.Error("DropBefore crossed variables")
	}
}

func TestPutAsync(t *testing.T) {
	sp := NewSpace(2, 0, dom())
	errs := []<-chan error{
		sp.PutAsync("rho", 0, block(grid.IV(0, 0, 0), 4, 1)),
		sp.PutAsync("rho", 0, block(grid.IV(8, 0, 0), 4, 2)),
	}
	for _, ch := range errs {
		if err := <-ch; err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sp.Get("rho", 0, dom()); err != nil {
		t.Fatal(err)
	}
}

func TestPutEmptyRejected(t *testing.T) {
	sp := NewSpace(1, 0, dom())
	if err := sp.Put("rho", 0, nil); err == nil {
		t.Error("nil block accepted")
	}
}

func TestConcurrentPutGet(t *testing.T) {
	sp := NewSpace(8, 0, dom())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				lo := grid.IV((w*8)%56, (i*4)%56, ((w+i)*4)%56)
				if err := sp.Put("rho", i%3, block(lo, 4, float64(w))); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				if _, err := sp.Get("rho", i%3, dom()); err != nil {
					t.Errorf("get: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestRoutingSpreadsLoad(t *testing.T) {
	sp := NewSpace(4, 0, dom())
	// Blocks spread over the domain should land on more than one shard.
	for x := 0; x < 64; x += 8 {
		for y := 0; y < 64; y += 8 {
			sp.Put("rho", 0, block(grid.IV(x, y, 0), 8, 1))
		}
	}
	nonEmpty := 0
	for _, used := range sp.MemPerServer() {
		if used > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		t.Errorf("routing concentrated all blocks on %d shard(s)", nonEmpty)
	}
}

func TestMemCapacity(t *testing.T) {
	if got := NewSpace(4, 100, dom()).MemCapacity(); got != 400 {
		t.Errorf("MemCapacity = %d", got)
	}
	if got := NewSpace(4, 0, dom()).MemCapacity(); got != 0 {
		t.Errorf("unlimited capacity = %d", got)
	}
}

// TestPutKeepsDistinctBlocksWithEqualBoxes pins append semantics for plain
// puts: blocks from different AMR levels can share box coordinates (a
// level-0 box and a refined level-1 box coincide numerically), so a put
// must never replace an existing block just because the boxes match.
// Replay dedup is opt-in via PutSeq's sequence numbers.
func TestPutKeepsDistinctBlocksWithEqualBoxes(t *testing.T) {
	sp := NewSpace(2, 0, dom())
	if err := sp.Put("v", 0, block(grid.IV(0, 0, 0), 4, 1.0)); err != nil {
		t.Fatal(err)
	}
	if err := sp.Put("v", 0, block(grid.IV(0, 0, 0), 4, 2.0)); err != nil {
		t.Fatal(err)
	}
	blocks, err := sp.GetBlocks("v", 0, dom())
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 2 {
		t.Fatalf("stored %d blocks, want 2 (same box must not replace)", len(blocks))
	}

	// Sequenced puts with the same seq DO replace.
	if err := sp.PutSeq("w", 0, 7, block(grid.IV(0, 0, 0), 4, 1.0)); err != nil {
		t.Fatal(err)
	}
	if err := sp.PutSeq("w", 0, 7, block(grid.IV(0, 0, 0), 4, 3.0)); err != nil {
		t.Fatal(err)
	}
	blocks, err = sp.GetBlocks("w", 0, dom())
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 1 {
		t.Fatalf("stored %d blocks, want 1 (same seq must replace)", len(blocks))
	}
	if got := blocks[0].Comp(0)[0]; got != 3.0 {
		t.Errorf("replayed put kept stale data: %g", got)
	}
}
