// Package staging implements the DataSpaces-like data staging substrate the
// workflow runs on: a sharded, versioned, in-memory object space addressed
// by (variable, version, bounding box). Writers put rectangular blocks;
// readers get arbitrary rectangular regions which the space assembles from
// every intersecting stored block. Blocks are routed to server shards by
// the Morton code of their center, the same space-filling-curve bucketing
// DataSpaces uses for its distributed hash table.
//
// The space enforces per-server memory capacities — exhaustion surfaces as
// ErrNoMemory, the condition that drives the paper's resource-layer
// adaptation (Eq. 10) — and supports asynchronous put/get, mirroring the
// asynchronous transport the middleware-layer policy relies on ("the data
// will be asynchronously transferred to staging nodes immediately").
package staging

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"crosslayer/internal/field"
	"crosslayer/internal/grid"
)

// ErrNoMemory reports that the target server shard cannot hold the object.
var ErrNoMemory = errors.New("staging: server memory exhausted")

// ErrNotFound reports that no stored block intersects the requested region.
var ErrNotFound = errors.New("staging: no data for requested region")

// Object is one stored block. Seq identifies one logical put for replay
// deduplication (see PutSeq); NoSeq marks an unsequenced put.
type Object struct {
	Var     string
	Version int
	Seq     int64
	Data    *field.BoxData
}

// NoSeq is the Seq of unsequenced puts; they always append.
const NoSeq int64 = -1

// isRepairSeq reports whether seq tags a block re-stored by the pool's
// anti-entropy repair. Repair puts negate the client's (positive) unique
// sequence number: retries stay idempotent through the same-seq branch of
// put, while a racing normal put of the same block can recognize and
// replace the restored copy instead of appending a duplicate.
func isRepairSeq(seq int64) bool { return seq != NoSeq && seq < 0 }

// server is one shard of the space.
type server struct {
	mu       sync.Mutex
	objects  map[string][]*Object // keyed by var@version
	memUsed  int64
	capacity int64
}

func key(varName string, version int) string {
	return fmt.Sprintf("%s@%d", varName, version)
}

// put stores o and reports what it actually booked — the byte delta and
// the object-count delta — so the space can settle a tenant's pessimistic
// quota reservation to the real cost (a replacement's delta, a merged
// repair's zero, a full release on error).
func (s *server) put(o *Object) (delta int64, added int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sz := o.Data.Bytes()
	k := key(o.Var, o.Version)
	replace := func(i int, old *Object) (int64, int, error) {
		if s.capacity > 0 && s.memUsed-old.Data.Bytes()+sz > s.capacity {
			return 0, 0, ErrNoMemory
		}
		s.memUsed += sz - old.Data.Bytes()
		s.objects[k][i] = o
		return sz - old.Data.Bytes(), 0, nil
	}
	// A sequenced put replaces the object with the same sequence number: a
	// client replaying a put whose response was lost must not duplicate
	// data (retry idempotency). Matching must NOT fall back to the box —
	// blocks from different AMR levels legitimately share box coordinates
	// (a level-0 box and a refined level-1 box can coincide numerically).
	if o.Seq != NoSeq {
		for i, old := range s.objects[k] {
			if old.Seq == o.Seq {
				return replace(i, old)
			}
		}
	}
	// A normal put can race the anti-entropy repair that already restored
	// the same block from a surviving replica (the put's own write was
	// still queued behind the probe when the repair fetched). The restored
	// copy carries a repair-tagged sequence number and identical content,
	// so the put replaces it instead of appending a duplicate. Content must
	// match, not just the box: a coincident box from a different put holds
	// different data and its restored copy must survive.
	if o.Seq > 0 {
		for i, old := range s.objects[k] {
			if isRepairSeq(old.Seq) && old.Data.Equal(o.Data) {
				return replace(i, old)
			}
		}
	}
	// A repair re-put merges: when the server already holds an identical
	// block — the endpoint never lost its store, or the put that wrote it
	// landed after the repair's fetch — the existing copy stands and the
	// restored one is discarded, so repairing a healthy store is a no-op
	// instead of a duplication.
	if isRepairSeq(o.Seq) {
		for _, old := range s.objects[k] {
			if old.Data.Equal(o.Data) {
				return 0, 0, nil
			}
		}
	}
	if s.capacity > 0 && s.memUsed+sz > s.capacity {
		return 0, 0, ErrNoMemory
	}
	s.objects[k] = append(s.objects[k], o)
	s.memUsed += sz
	return sz, 1, nil
}

func (s *server) query(varName string, version int, region grid.Box) []*Object {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Object
	for _, o := range s.objects[key(varName, version)] {
		if o.Data.Box.Intersects(region) {
			out = append(out, o)
		}
	}
	return out
}

func (s *server) dropBefore(varName string, version int) (freed int64, blocks int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, objs := range s.objects {
		if len(objs) == 0 || objs[0].Var != varName || objs[0].Version >= version {
			continue
		}
		for _, o := range objs {
			freed += o.Data.Bytes()
		}
		blocks += len(objs)
		delete(s.objects, k)
	}
	s.memUsed -= freed
	return freed, blocks
}

// Space is the staging service: a set of server shards over a global
// domain. Tenant-qualified variables (see TenantVar) are additionally
// accounted per tenant, and SetTenantQuota caps what one tenant may hold
// across the space's shards.
type Space struct {
	domain  grid.Box
	servers []*server

	// Per-tenant accounting spans shards, so it lives above them: quota
	// admission is a check-then-reserve under one mutex, settled to the
	// shard's actual booking after the put lands (see PutSeq).
	qmu    sync.Mutex
	quotas map[string]TenantQuota
	usage  map[string]*tenantUsage

	// Optional durability (wal.go). opMu keeps the WAL's record order
	// consistent with shard state: puts hold it shared around
	// shard-mutation + log-append, clear/drop/attach hold it exclusive, so
	// a Clear can never interleave between a put's shard write and its log
	// record. dur is nil when the space is not persisted.
	opMu       sync.RWMutex
	dur        *durability
	walMetrics walCounters
}

type tenantUsage struct {
	bytes  int64
	blocks int
}

// NewSpace creates a staging space with nservers shards, each with the
// given memory capacity in bytes (0 = unlimited), indexing blocks within
// domain.
func NewSpace(nservers int, capacityPerServer int64, domain grid.Box) *Space {
	if nservers < 1 {
		panic(fmt.Sprintf("staging: need >= 1 server, got %d", nservers))
	}
	sp := &Space{domain: domain}
	for i := 0; i < nservers; i++ {
		sp.servers = append(sp.servers, &server{
			objects:  make(map[string][]*Object),
			capacity: capacityPerServer,
		})
	}
	return sp
}

// NumServers returns the shard count.
func (sp *Space) NumServers() int { return len(sp.servers) }

// route picks the shard for a block: Morton code of the box center scaled
// into the shard range, preserving spatial locality across shards.
func (sp *Space) route(b grid.Box) *server {
	return sp.servers[routeIndex(sp.domain, b, len(sp.servers))]
}

// routeIndex maps a block to a shard index in [0, n): the Morton code of the
// box center, scaled over the shard range so contiguous curve segments land
// on the same shard. The same routing drives the in-process Space and the
// replicated Pool, so both agree on which endpoint owns a block.
func routeIndex(domain grid.Box, b grid.Box, n int) int {
	c := b.Center().Sub(domain.Lo).Max(grid.Zero)
	code := grid.MortonCode(c)
	// Codes of in-domain points span [0, MortonCode(maxCorner)]; scale that
	// range over the shards. code*n is computed in 128 bits: Morton codes
	// use up to 63 bits, so the plain 64-bit product overflows for domains
	// larger than ~2^20 cells per side and misroutes blocks.
	maxCode := grid.MortonCode(domain.Size().Sub(grid.Unit).Max(grid.Zero)) + 1
	idx := int(code % uint64(n))
	if maxCode > 0 {
		hi, lo := bits.Mul64(code, uint64(n))
		if hi >= maxCode {
			// code >= maxCode (an out-of-domain center); clamp below.
			idx = n
		} else {
			q, _ := bits.Div64(hi, lo, maxCode)
			idx = int(q)
		}
		if idx >= n {
			idx = n - 1
		}
	}
	return idx
}

// Put stores a block of varName at version. The block is routed to one
// shard; ErrNoMemory is returned if that shard is full.
func (sp *Space) Put(varName string, version int, d *field.BoxData) error {
	return sp.PutSeq(varName, version, NoSeq, d)
}

// PutSeq stores a block under a caller-chosen sequence number: a later put
// with the same (var, version, seq) replaces the block instead of adding a
// second copy. The TCP client tags every logical put with a unique seq that
// stays fixed across its retries, making replays after a lost response
// idempotent. Seq NoSeq always appends (plain Put).
func (sp *Space) PutSeq(varName string, version int, seq int64, d *field.BoxData) error {
	if d == nil || d.Box.IsEmpty() {
		return errors.New("staging: empty block")
	}
	tenant := TenantOf(varName)
	sz := d.Bytes()
	if tenant != "" {
		// Pessimistic reservation: admit as if the put appends a whole new
		// block, then settle to what the shard actually booked (zero for a
		// merged repair, the delta for an idempotent-retry replacement).
		if err := sp.reserveTenant(tenant, sz); err != nil {
			return err
		}
	}
	sp.opMu.RLock()
	delta, added, err := sp.route(d.Box).put(&Object{Var: varName, Version: version, Seq: seq, Data: d})
	var walErr error
	if err == nil && sp.dur != nil {
		// Log (and fsync) before acknowledging: an acked put survives a
		// crash. The settlement record rides in the same append.
		walErr = sp.dur.logPut(varName, version, seq, d, tenant, delta-sz, added-1)
	}
	sp.opMu.RUnlock()
	if tenant != "" {
		sp.adjustTenant(tenant, delta-sz, added-1)
	}
	if err == nil {
		err = walErr
	}
	return err
}

// reserveTenant admits one prospective block of sz bytes against the
// tenant's quota and books it. ErrQuotaExceeded leaves usage untouched.
func (sp *Space) reserveTenant(tenant string, sz int64) error {
	sp.qmu.Lock()
	defer sp.qmu.Unlock()
	u := sp.usage[tenant]
	if u == nil {
		if sp.usage == nil {
			sp.usage = make(map[string]*tenantUsage)
		}
		u = &tenantUsage{}
		sp.usage[tenant] = u
	}
	if q, ok := sp.quotas[tenant]; ok {
		if (q.MaxBytes > 0 && u.bytes+sz > q.MaxBytes) ||
			(q.MaxBlocks > 0 && u.blocks+1 > q.MaxBlocks) {
			return ErrQuotaExceeded
		}
	}
	u.bytes += sz
	u.blocks++
	return nil
}

func (sp *Space) adjustTenant(tenant string, bytes int64, blocks int) {
	sp.qmu.Lock()
	defer sp.qmu.Unlock()
	if u := sp.usage[tenant]; u != nil {
		u.bytes += bytes
		u.blocks += blocks
	}
}

// SetTenantQuota caps what tenant may hold across all shards. A zero
// MaxBytes (or MaxBlocks) leaves that dimension unlimited; setting the
// zero TenantQuota removes the cap but keeps the accounting.
func (sp *Space) SetTenantQuota(tenant string, q TenantQuota) {
	sp.qmu.Lock()
	defer sp.qmu.Unlock()
	if sp.quotas == nil {
		sp.quotas = make(map[string]TenantQuota)
	}
	sp.quotas[tenant] = q
}

// TenantUsage reports the bytes and blocks currently booked to tenant.
func (sp *Space) TenantUsage(tenant string) (bytes int64, blocks int) {
	sp.qmu.Lock()
	defer sp.qmu.Unlock()
	if u := sp.usage[tenant]; u != nil {
		return u.bytes, u.blocks
	}
	return 0, 0
}

// PutAsync stores a block in the background, delivering the result on the
// returned channel (buffered: the sender never blocks).
func (sp *Space) PutAsync(varName string, version int, d *field.BoxData) <-chan error {
	done := make(chan error, 1)
	go func() { done <- sp.Put(varName, version, d) }()
	return done
}

// Get assembles the stored data of varName at version over region into a
// fresh BoxData. Cells of region not covered by any stored block are zero;
// ErrNotFound is returned when nothing intersects at all. Shards are
// queried concurrently.
func (sp *Space) Get(varName string, version int, region grid.Box) (*field.BoxData, error) {
	objs := sp.collect(varName, version, region)
	if len(objs) == 0 {
		return nil, ErrNotFound
	}
	out := field.New(region, objs[0].Data.NComp)
	for _, o := range objs {
		out.CopyFrom(o.Data)
	}
	return out, nil
}

// GetBlocks returns the stored blocks of varName at version intersecting
// region, without assembling them (what an in-transit analysis kernel that
// works block-locally wants).
func (sp *Space) GetBlocks(varName string, version int, region grid.Box) ([]*field.BoxData, error) {
	objs := sp.collect(varName, version, region)
	if len(objs) == 0 {
		return nil, ErrNotFound
	}
	out := make([]*field.BoxData, len(objs))
	for i, o := range objs {
		out[i] = o.Data
	}
	return out, nil
}

func (sp *Space) collect(varName string, version int, region grid.Box) []*Object {
	results := make([][]*Object, len(sp.servers))
	var wg sync.WaitGroup
	for i, s := range sp.servers {
		wg.Add(1)
		go func(i int, s *server) {
			defer wg.Done()
			results[i] = s.query(varName, version, region)
		}(i, s)
	}
	wg.Wait()
	var out []*Object
	for _, r := range results {
		out = append(out, r...)
	}
	// Deterministic assembly order regardless of shard scheduling.
	sort.Slice(out, func(i, j int) bool {
		bi, bj := out[i].Data.Box, out[j].Data.Box
		return grid.MortonCode(bi.Lo.Sub(sp.domain.Lo).Max(grid.Zero)) <
			grid.MortonCode(bj.Lo.Sub(sp.domain.Lo).Max(grid.Zero))
	})
	return out
}

// Clear discards every stored object across all shards — the data-loss half
// of a modeled server crash (the crash harness severs the transport with a
// faultnet.Gate and wipes the backing space with Clear, so a rejoining
// server comes back empty and must be repaired by its pool's anti-entropy
// pass).
func (sp *Space) Clear() {
	sp.opMu.Lock()
	for _, s := range sp.servers {
		s.mu.Lock()
		s.objects = make(map[string][]*Object)
		s.memUsed = 0
		s.mu.Unlock()
	}
	if sp.dur != nil {
		sp.dur.logClear()
	}
	sp.opMu.Unlock()
	sp.qmu.Lock()
	sp.usage = nil
	sp.qmu.Unlock()
}

// DropBefore evicts every block of varName with version < version,
// returning the bytes freed. The workflow calls this once a version has
// been fully analyzed.
func (sp *Space) DropBefore(varName string, version int) int64 {
	var freed int64
	var blocks int
	sp.opMu.Lock()
	for _, s := range sp.servers {
		f, n := s.dropBefore(varName, version)
		freed += f
		blocks += n
	}
	if sp.dur != nil && blocks > 0 {
		sp.dur.logDrop(varName, version)
	}
	sp.opMu.Unlock()
	if tenant := TenantOf(varName); tenant != "" && blocks > 0 {
		sp.adjustTenant(tenant, -freed, -blocks)
	}
	return freed
}

// MemUsed returns total bytes held across shards.
func (sp *Space) MemUsed() int64 {
	var used int64
	for _, s := range sp.servers {
		s.mu.Lock()
		used += s.memUsed
		s.mu.Unlock()
	}
	return used
}

// MemCapacity returns the total capacity across shards (0 = unlimited).
func (sp *Space) MemCapacity() int64 {
	var c int64
	for _, s := range sp.servers {
		if s.capacity == 0 {
			return 0
		}
		c += s.capacity
	}
	return c
}

// MemPerServer reports each shard's usage, exposing imbalance.
func (sp *Space) MemPerServer() []int64 {
	out := make([]int64, len(sp.servers))
	for i, s := range sp.servers {
		s.mu.Lock()
		out[i] = s.memUsed
		s.mu.Unlock()
	}
	return out
}
