package staging

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"crosslayer/internal/field"
	"crosslayer/internal/grid"
)

// Wire format for one block (all integers little-endian):
//
//	magic   uint32  'XLBD'
//	lo      3×int32
//	hi      3×int32
//	ncomp   uint32
//	payload ncomp×cells×float64
//	crc     uint32  CRC-32C (Castagnoli) of the payload bytes
//
// The format is self-describing enough for the staging protocol and the
// plotfile writer, and deliberately simple: a block is always rectangular
// and dense. The checksum exists because blocks cross an unreliable
// transport: a flipped payload byte is an otherwise perfectly valid
// float64, so without it corruption would pass through silently.

const blockMagic uint32 = 0x584c4244 // "XLBD"

// ErrBadBlock reports a malformed serialized block.
var ErrBadBlock = errors.New("staging: malformed serialized block")

// maxWireCells bounds decoded allocations (defense against corrupt or
// hostile streams): 64M cells ≈ 512 MB for one component.
const maxWireCells = int64(64) << 20

// crcTable is the Castagnoli polynomial table the payload checksum uses.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// EncodedSize returns the wire size of a block in bytes.
func EncodedSize(d *field.BoxData) int64 {
	return 4 + 24 + 4 + d.NumCells()*int64(d.NComp)*8 + 4
}

// EncodeBlock writes d to w in wire format.
func EncodeBlock(w io.Writer, d *field.BoxData) error {
	if d == nil || d.Box.IsEmpty() {
		return fmt.Errorf("%w: empty block", ErrBadBlock)
	}
	hdr := make([]byte, 4+24+4)
	binary.LittleEndian.PutUint32(hdr[0:], blockMagic)
	for i, v := range []int{d.Box.Lo.X, d.Box.Lo.Y, d.Box.Lo.Z, d.Box.Hi.X, d.Box.Hi.Y, d.Box.Hi.Z} {
		binary.LittleEndian.PutUint32(hdr[4+4*i:], uint32(int32(v)))
	}
	binary.LittleEndian.PutUint32(hdr[28:], uint32(d.NComp))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	crc := uint32(0)
	buf := make([]byte, 8*len(d.Comp(0)))
	for c := 0; c < d.NComp; c++ {
		comp := d.Comp(c)
		for i, v := range comp {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
		}
		crc = crc32.Update(crc, crcTable, buf)
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc)
	_, err := w.Write(trailer[:])
	return err
}

// DecodeBlock reads one wire-format block from r.
func DecodeBlock(r io.Reader) (*field.BoxData, error) {
	hdr := make([]byte, 4+24+4)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != blockMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadBlock)
	}
	geti := func(i int) int { return int(int32(binary.LittleEndian.Uint32(hdr[4+4*i:]))) }
	box := grid.NewBox(
		grid.IV(geti(0), geti(1), geti(2)),
		grid.IV(geti(3), geti(4), geti(5)),
	)
	ncomp := int(binary.LittleEndian.Uint32(hdr[28:]))
	// Bound each extent before multiplying: three ~2^31 extents overflow the
	// int64 cell product, so NumCells alone cannot be trusted on wire input.
	sz := box.Size()
	nx, ny, nz := int64(sz.X), int64(sz.Y), int64(sz.Z)
	if box.IsEmpty() || ncomp < 1 || ncomp > 64 ||
		nx > maxWireCells || ny > maxWireCells || nz > maxWireCells ||
		nx*ny > maxWireCells || nx*ny*nz > maxWireCells {
		return nil, fmt.Errorf("%w: box %v ncomp %d", ErrBadBlock, box, ncomp)
	}
	// Read the payload in bounded chunks before allocating the block, so a
	// corrupt header claiming a huge box cannot force an allocation larger
	// than (a small multiple of) the bytes the stream actually carries.
	payload, err := readPayload(r, int64(ncomp)*box.NumCells()*8)
	if err != nil {
		return nil, err
	}
	var trailer [4]byte
	if _, err := io.ReadFull(r, trailer[:]); err != nil {
		return nil, err
	}
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(trailer[:]) {
		return nil, fmt.Errorf("%w: payload checksum mismatch", ErrBadBlock)
	}
	d := field.New(box, ncomp)
	cells := int(box.NumCells())
	for c := 0; c < ncomp; c++ {
		comp := d.Comp(c)
		base := c * cells * 8
		for i := range comp {
			comp[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[base+8*i:]))
		}
	}
	return d, nil
}

// readPayload reads exactly total bytes from r, growing its buffer chunk by
// chunk: the peak allocation tracks the bytes actually received, not the
// total a (possibly hostile) header claims.
func readPayload(r io.Reader, total int64) ([]byte, error) {
	const chunkSize = 64 << 10
	out := make([]byte, 0, min(total, chunkSize))
	chunk := make([]byte, chunkSize)
	for int64(len(out)) < total {
		n := min(total-int64(len(out)), chunkSize)
		m, err := io.ReadFull(r, chunk[:n])
		out = append(out, chunk[:m]...)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
