package staging

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"crosslayer/internal/field"
	"crosslayer/internal/grid"
)

// Wire format for one block (all integers little-endian):
//
//	magic   uint32  'XLBD'
//	lo      3×int32
//	hi      3×int32
//	ncomp   uint32
//	payload ncomp×cells×float64
//
// The format is self-describing enough for the staging protocol and the
// plotfile writer, and deliberately simple: a block is always rectangular
// and dense.

const blockMagic uint32 = 0x584c4244 // "XLBD"

// ErrBadBlock reports a malformed serialized block.
var ErrBadBlock = errors.New("staging: malformed serialized block")

// maxWireCells bounds decoded allocations (defense against corrupt or
// hostile streams): 64M cells ≈ 512 MB for one component.
const maxWireCells = int64(64) << 20

// EncodedSize returns the wire size of a block in bytes.
func EncodedSize(d *field.BoxData) int64 {
	return 4 + 24 + 4 + d.NumCells()*int64(d.NComp)*8
}

// EncodeBlock writes d to w in wire format.
func EncodeBlock(w io.Writer, d *field.BoxData) error {
	if d == nil || d.Box.IsEmpty() {
		return fmt.Errorf("%w: empty block", ErrBadBlock)
	}
	hdr := make([]byte, 4+24+4)
	binary.LittleEndian.PutUint32(hdr[0:], blockMagic)
	for i, v := range []int{d.Box.Lo.X, d.Box.Lo.Y, d.Box.Lo.Z, d.Box.Hi.X, d.Box.Hi.Y, d.Box.Hi.Z} {
		binary.LittleEndian.PutUint32(hdr[4+4*i:], uint32(int32(v)))
	}
	binary.LittleEndian.PutUint32(hdr[28:], uint32(d.NComp))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	buf := make([]byte, 8*len(d.Comp(0)))
	for c := 0; c < d.NComp; c++ {
		comp := d.Comp(c)
		for i, v := range comp {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// DecodeBlock reads one wire-format block from r.
func DecodeBlock(r io.Reader) (*field.BoxData, error) {
	hdr := make([]byte, 4+24+4)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != blockMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadBlock)
	}
	geti := func(i int) int { return int(int32(binary.LittleEndian.Uint32(hdr[4+4*i:]))) }
	box := grid.NewBox(
		grid.IV(geti(0), geti(1), geti(2)),
		grid.IV(geti(3), geti(4), geti(5)),
	)
	ncomp := int(binary.LittleEndian.Uint32(hdr[28:]))
	if box.IsEmpty() || ncomp < 1 || ncomp > 64 || box.NumCells() > maxWireCells {
		return nil, fmt.Errorf("%w: box %v ncomp %d", ErrBadBlock, box, ncomp)
	}
	d := field.New(box, ncomp)
	buf := make([]byte, 8*int(box.NumCells()))
	for c := 0; c < ncomp; c++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		comp := d.Comp(c)
		for i := range comp {
			comp[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
		}
	}
	return d, nil
}
