package staging

import (
	"testing"

	"crosslayer/internal/obs"
)

// rejoinRepairBytes drives one kill→rejoin cycle of pool server 1 and
// reports what the repair pass shipped and what the manifest diff avoided.
// With durableRestart the server comes back over its own data dir — the
// delta-rejoin path; without it the server rejoins empty — the full
// anti-entropy re-put.
func rejoinRepairBytes(t *testing.T, durableRestart bool) (shipped, avoided int64) {
	t.Helper()
	sink := obs.NewRingSink(256)
	rig := newPoolRig(t, 3, 2)
	rig.pool.events = obs.NewEmitter(sink)

	var dir string
	if durableRestart {
		dir = t.TempDir()
		if _, err := rig.spaces[1].Persist(dir, "s1"); err != nil {
			t.Fatalf("persist: %v", err)
		}
	}
	putAll(t, rig.pool, 0, spread())

	// Kill -9: transport severed, WAL fd dropped unflushed, memory gone.
	rig.gates[1].Kill()
	if durableRestart {
		rig.spaces[1].CrashPersist()
	}
	rig.spaces[1].Clear()
	if _, err := rig.pool.GetBlocks("rho", 0, dom()); err != nil {
		t.Fatal(err) // failover read; also opens the breaker
	}
	if durableRestart {
		st, err := rig.spaces[1].Persist(dir, "s1")
		if err != nil {
			t.Fatalf("recover: %v", err)
		}
		if st.Blocks == 0 {
			t.Fatal("recovery restored nothing; the delta path would be vacuous")
		}
	}
	rig.gates[1].Revive()
	if _, err := rig.pool.GetBlocks("rho", 0, dom()); err != nil {
		t.Fatal(err) // half-opens the breaker, probes, repairs, rejoins
	}
	if healthy, _ := rig.pool.HealthyEndpoints(); healthy != 3 {
		t.Fatalf("healthy = %d, want 3 after rejoin", healthy)
	}

	for _, e := range sink.Events() {
		switch e.Kind {
		case obs.KindRepair:
			shipped += e.Bytes
		case obs.KindRepairDelta:
			avoided += e.Bytes
		}
	}
	if durableRestart {
		rig.spaces[1].ClosePersist()
	}
	return shipped, avoided
}

// TestDeltaRepairShipsFewerBytes measures the tentpole's payoff: a durable
// server that recovered its store from disk advertises its content manifest
// on rejoin, and the repair pass ships strictly fewer bytes than the full
// anti-entropy re-put an empty rejoiner needs — here, zero, because the
// recovered state matches the live set exactly. The logged numbers are the
// source of EXPERIMENTS.md's full-vs-delta repair table.
func TestDeltaRepairShipsFewerBytes(t *testing.T) {
	fullShipped, fullAvoided := rejoinRepairBytes(t, false)
	deltaShipped, deltaAvoided := rejoinRepairBytes(t, true)

	if fullShipped == 0 {
		t.Fatal("full repair shipped nothing; the comparison is vacuous")
	}
	if fullAvoided != 0 {
		t.Errorf("empty rejoiner avoided %d bytes; its manifest should match nothing", fullAvoided)
	}
	if deltaShipped >= fullShipped {
		t.Errorf("delta repair shipped %d bytes, full repair %d — delta must be strictly fewer",
			deltaShipped, fullShipped)
	}
	if deltaAvoided == 0 {
		t.Error("delta repair avoided no bytes; the manifest diff never matched")
	}
	t.Logf("rejoin repair: full=%d bytes shipped; delta=%d shipped, %d avoided (%.1f%% of the full re-put)",
		fullShipped, deltaShipped, deltaAvoided,
		100*float64(deltaShipped)/float64(fullShipped))
}
