package staging

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"crosslayer/internal/field"
	"crosslayer/internal/grid"
)

// TCP transport for the staging space: a Server exposes a Space over a
// stream socket with a small binary protocol, and a Client gives remote
// processes the same Put/GetBlocks/DropBefore operations the in-process
// API offers. This is the deployment shape of a real staging service —
// dedicated staging nodes running servers, simulation ranks connecting as
// clients — realized with the stdlib net package.
//
// Protocol (little-endian), one request per round trip:
//
//	request:  op uint8 | varLen uint16 | var bytes | version int32 | body
//	  opPut   body = one wire-format block
//	  opGet   body = region box (6×int32)
//	  opDrop  body = empty (drops versions < version)
//	  opStat  body = empty
//	response: status uint8 | body
//	  opPut   -
//	  opGet   count uint32 | count wire-format blocks
//	  opDrop  freed int64
//	  opStat  used int64
const (
	opPut  = 1
	opGet  = 2
	opDrop = 3
	opStat = 4

	statusOK       = 0
	statusNotFound = 1
	statusNoMemory = 2
	statusBad      = 3
)

// ErrProtocol reports a malformed or unexpected protocol exchange.
var ErrProtocol = errors.New("staging: protocol error")

// Server serves a Space over TCP.
type Server struct {
	space *Space
	ln    net.Listener
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// Serve starts a server on addr (e.g. "127.0.0.1:0") backed by space.
func Serve(addr string, space *Space) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{space: space, ln: ln}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting connections and waits for in-flight handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return
			}
			continue // transient accept error
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.handle(conn)
		}()
	}
}

// handle serves one connection until EOF or error.
func (s *Server) handle(conn net.Conn) {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		if err := s.handleOne(r, w); err != nil {
			return // connection-level error or clean EOF
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

func (s *Server) handleOne(r *bufio.Reader, w *bufio.Writer) error {
	var hdr [3]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	op := hdr[0]
	varLen := binary.LittleEndian.Uint16(hdr[1:])
	if varLen > 256 {
		return fmt.Errorf("%w: variable name too long", ErrProtocol)
	}
	nameBuf := make([]byte, varLen)
	if _, err := io.ReadFull(r, nameBuf); err != nil {
		return err
	}
	var verBuf [4]byte
	if _, err := io.ReadFull(r, verBuf[:]); err != nil {
		return err
	}
	varName := string(nameBuf)
	version := int(int32(binary.LittleEndian.Uint32(verBuf[:])))

	switch op {
	case opPut:
		d, err := DecodeBlock(r)
		if err != nil {
			if errors.Is(err, ErrBadBlock) {
				w.WriteByte(statusBad)
				return nil
			}
			return err
		}
		switch err := s.space.Put(varName, version, d); {
		case errors.Is(err, ErrNoMemory):
			return w.WriteByte(statusNoMemory)
		case err != nil:
			return w.WriteByte(statusBad)
		default:
			return w.WriteByte(statusOK)
		}

	case opGet:
		var boxBuf [24]byte
		if _, err := io.ReadFull(r, boxBuf[:]); err != nil {
			return err
		}
		geti := func(i int) int { return int(int32(binary.LittleEndian.Uint32(boxBuf[4*i:]))) }
		region := grid.NewBox(grid.IV(geti(0), geti(1), geti(2)), grid.IV(geti(3), geti(4), geti(5)))
		blocks, err := s.space.GetBlocks(varName, version, region)
		if errors.Is(err, ErrNotFound) {
			return w.WriteByte(statusNotFound)
		}
		if err != nil {
			return w.WriteByte(statusBad)
		}
		if err := w.WriteByte(statusOK); err != nil {
			return err
		}
		var cnt [4]byte
		binary.LittleEndian.PutUint32(cnt[:], uint32(len(blocks)))
		if _, err := w.Write(cnt[:]); err != nil {
			return err
		}
		for _, b := range blocks {
			if err := EncodeBlock(w, b); err != nil {
				return err
			}
		}
		return nil

	case opDrop:
		freed := s.space.DropBefore(varName, version)
		if err := w.WriteByte(statusOK); err != nil {
			return err
		}
		var out [8]byte
		binary.LittleEndian.PutUint64(out[:], uint64(freed))
		_, err := w.Write(out[:])
		return err

	case opStat:
		if err := w.WriteByte(statusOK); err != nil {
			return err
		}
		var out [8]byte
		binary.LittleEndian.PutUint64(out[:], uint64(s.space.MemUsed()))
		_, err := w.Write(out[:])
		return err
	}
	return fmt.Errorf("%w: unknown op %d", ErrProtocol, op)
}

// Client talks to a staging Server. It is safe for concurrent use; requests
// on one client serialize over its single connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a staging server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) writeHeader(op byte, varName string, version int) error {
	if len(varName) > 256 {
		return fmt.Errorf("%w: variable name too long", ErrProtocol)
	}
	var hdr [3]byte
	hdr[0] = op
	binary.LittleEndian.PutUint16(hdr[1:], uint16(len(varName)))
	if _, err := c.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := c.w.WriteString(varName); err != nil {
		return err
	}
	var ver [4]byte
	binary.LittleEndian.PutUint32(ver[:], uint32(int32(version)))
	_, err := c.w.Write(ver[:])
	return err
}

func (c *Client) readStatus() (byte, error) {
	if err := c.w.Flush(); err != nil {
		return statusBad, err
	}
	return c.r.ReadByte()
}

// Put stores a block of varName at version on the server.
func (c *Client) Put(varName string, version int, d *field.BoxData) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.writeHeader(opPut, varName, version); err != nil {
		return err
	}
	if err := EncodeBlock(c.w, d); err != nil {
		return err
	}
	st, err := c.readStatus()
	if err != nil {
		return err
	}
	switch st {
	case statusOK:
		return nil
	case statusNoMemory:
		return ErrNoMemory
	default:
		return fmt.Errorf("%w: put status %d", ErrProtocol, st)
	}
}

// GetBlocks fetches the stored blocks of varName at version intersecting
// region.
func (c *Client) GetBlocks(varName string, version int, region grid.Box) ([]*field.BoxData, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.writeHeader(opGet, varName, version); err != nil {
		return nil, err
	}
	var boxBuf [24]byte
	for i, v := range []int{region.Lo.X, region.Lo.Y, region.Lo.Z, region.Hi.X, region.Hi.Y, region.Hi.Z} {
		binary.LittleEndian.PutUint32(boxBuf[4*i:], uint32(int32(v)))
	}
	if _, err := c.w.Write(boxBuf[:]); err != nil {
		return nil, err
	}
	st, err := c.readStatus()
	if err != nil {
		return nil, err
	}
	switch st {
	case statusNotFound:
		return nil, ErrNotFound
	case statusOK:
	default:
		return nil, fmt.Errorf("%w: get status %d", ErrProtocol, st)
	}
	var cnt [4]byte
	if _, err := io.ReadFull(c.r, cnt[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(cnt[:])
	if n > 1<<20 {
		return nil, fmt.Errorf("%w: absurd block count %d", ErrProtocol, n)
	}
	out := make([]*field.BoxData, 0, n)
	for i := uint32(0); i < n; i++ {
		b, err := DecodeBlock(c.r)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// DropBefore evicts versions of varName below version, returning bytes
// freed on the server.
func (c *Client) DropBefore(varName string, version int) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.writeHeader(opDrop, varName, version); err != nil {
		return 0, err
	}
	st, err := c.readStatus()
	if err != nil {
		return 0, err
	}
	if st != statusOK {
		return 0, fmt.Errorf("%w: drop status %d", ErrProtocol, st)
	}
	var out [8]byte
	if _, err := io.ReadFull(c.r, out[:]); err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(out[:])), nil
}

// MemUsed reports the server's total stored bytes.
func (c *Client) MemUsed() (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.writeHeader(opStat, "", 0); err != nil {
		return 0, err
	}
	st, err := c.readStatus()
	if err != nil {
		return 0, err
	}
	if st != statusOK {
		return 0, fmt.Errorf("%w: stat status %d", ErrProtocol, st)
	}
	var out [8]byte
	if _, err := io.ReadFull(c.r, out[:]); err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(out[:])), nil
}
