package staging

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"crosslayer/internal/field"
	"crosslayer/internal/grid"
	"crosslayer/internal/obs"
	"crosslayer/internal/obs/span"
)

// TCP transport for the staging space: a Server exposes a Space over a
// stream socket with a small binary protocol, and a Client gives remote
// processes the same Put/GetBlocks/DropBefore operations the in-process
// API offers. This is the deployment shape of a real staging service —
// dedicated staging nodes running servers, simulation ranks connecting as
// clients — realized with the stdlib net package.
//
// The staging area is a shared, failure-prone resource, so the client is
// resilient by default: every operation runs under a deadline, transport
// failures trigger bounded exponential-backoff retries with a transparent
// reconnect (the protocol is one request per round trip, so a retry is
// always a clean replay), and once the retry budget is exhausted the typed
// ErrStagingUnavailable surfaces so callers — the workflow's middleware
// layer above all — can degrade to in-situ execution instead of hanging.
//
// Protocol (little-endian), one request per round trip:
//
//	request:  op uint8 | varLen uint16 | var bytes | version int32 | body
//	  opPut   body = seq int64 | one wire-format block (seq identifies the
//	          logical put: a replayed request replaces, not duplicates)
//	  opGet   body = region box (6×int32)
//	  opDrop  body = empty (drops versions < version)
//	  opStat  body = empty
//	response: status uint8 | body
//	  opPut   -
//	  opGet   count uint32 | count wire-format blocks
//	  opDrop  freed int64
//	  opStat  used int64
//
// Trace-context extension: a client carrying an active span scope sets the
// opFlagTrace bit on the op byte and inserts a fixed 16-byte header —
// trace uint64 | parent-span uint64, little-endian — between the version
// and the body. A traced server parents its per-request child span under
// those IDs. The extension is strictly opt-in per deployment: a client with
// no span scope emits the exact pre-extension byte stream, so old servers
// interoperate with new clients (and a new server serves unflagged requests
// with no child spans, so old clients interoperate too). Stamping the
// extension at a server that predates it is a configuration error — the
// old server rejects the flagged op byte as an unknown op.
const (
	opPut  = 1
	opGet  = 2
	opDrop = 3
	opStat = 4
	// opManifest asks the server to advertise its content manifest plus
	// per-entry encoded byte totals (see Client.Manifest) — what a pool
	// uses to turn rejoin repair into a manifest-diff delta. Request: empty
	// var, version 0, empty body. Response: status | mlen uint32 | XLM1
	// manifest | entryCount × int64 byte totals (little-endian, in the
	// manifest's sorted entry order).
	opManifest = 5

	// opFlagTrace marks a request carrying the trace-context extension.
	opFlagTrace = 0x80

	statusOK       = 0
	statusNotFound = 1
	statusNoMemory = 2
	statusBad      = 3
	statusQuota    = 4
)

// traceExtSize is the wire size of the trace-context extension.
const traceExtSize = 16

// traceExt is the decoded trace-context request-header extension.
type traceExt struct {
	Trace  uint64 // trace ID (zero = no active trace; never stamped)
	Parent uint64 // parent span ID for server-side child spans
}

// encodeTraceExt renders ext into its fixed wire form.
func encodeTraceExt(ext traceExt) [traceExtSize]byte {
	var b [traceExtSize]byte
	binary.LittleEndian.PutUint64(b[0:], ext.Trace)
	binary.LittleEndian.PutUint64(b[8:], ext.Parent)
	return b
}

// decodeTraceExt parses the fixed wire form (decode ∘ encode ≡ identity —
// fuzz-enforced by FuzzSpanWireHeader).
func decodeTraceExt(b [traceExtSize]byte) traceExt {
	return traceExt{
		Trace:  binary.LittleEndian.Uint64(b[0:]),
		Parent: binary.LittleEndian.Uint64(b[8:]),
	}
}

// ErrProtocol reports a malformed or unexpected protocol exchange.
var ErrProtocol = errors.New("staging: protocol error")

// ErrStagingUnavailable reports that an operation's full retry budget was
// exhausted without one clean round trip: the staging service is
// unreachable, dead, or too degraded to use. The workflow treats it as a
// placement signal and falls back to in-situ analysis.
var ErrStagingUnavailable = errors.New("staging: service unavailable")

// ServerOptions tunes a staging server's admission control. The zero value
// preserves the historical behavior: every connection is accepted and
// served immediately, with no bound.
type ServerOptions struct {
	// MaxConns caps the connections served concurrently (≤0 = unlimited).
	MaxConns int

	// Backlog bounds the accept backlog: connections accepted while all
	// MaxConns slots are busy park here until a slot frees. A connection
	// arriving with the backlog full is shed — closed immediately with a
	// deterministic refuse-with-reason event. Ignored when MaxConns ≤ 0.
	Backlog int

	// Events, when set, receives one structured event per shed connection
	// and per quota-rejected put (attributed by tenant).
	Events *obs.Emitter

	// DataDir, when set, makes the server durable: the space is persisted
	// under this directory (write-ahead log + snapshot compaction, see
	// wal.go) and a previous incarnation's state is recovered from it at
	// construction. Only NewServer honors it — recovery can fail, and the
	// panic-free constructors refuse the option.
	DataDir string

	// ServerID names this server inside its data dir's file headers, so a
	// dir can never be recovered by a differently-configured server
	// (default "staging").
	ServerID string

	// RequestHook, when set, is called with each request's op byte after
	// the header is decoded and before the request is served — test
	// instrumentation for holding a handler in flight (e.g. to prove
	// Shutdown drains it).
	RequestHook func(op byte)
}

// Server serves a Space over TCP.
type Server struct {
	space *Space
	ln    net.Listener
	wg    sync.WaitGroup
	opts  ServerOptions

	// Admission control (nil slots = unlimited): a connection is served
	// only while holding a slot; the dispatcher drains the backlog as
	// handlers release slots.
	slots   chan struct{}
	backlog chan net.Conn
	done    chan struct{}

	// Admission and quota tallies, live regardless of Observe so harnesses
	// can reconcile them against event streams and metrics.
	nAdmitted, nQueued, nShed, nQuota atomic.Int64

	metrics atomic.Pointer[serverMetrics]
	tracer  atomic.Pointer[span.Tracer]

	// draining is set by Shutdown: handlers finish the request they are
	// serving, then exit instead of reading another.
	draining  atomic.Bool
	recovered *RecoverStats // non-nil when DataDir recovery ran

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]*atomic.Bool // per-conn mid-request flag
}

// serverMetrics is the server's instrument set (see Observe).
type serverMetrics struct {
	reqPut, reqGet, reqDrop, reqStat, reqManifest, reqOther *obs.Counter
	bytesIn, bytesOut                                       *obs.Counter
	activeConns                                             *obs.Gauge

	admAdmitted, admQueued              *obs.Counter
	admShedMaxConns, admShedBacklogFull *obs.Counter
	quotaRejected                       *obs.Counter
}

// count tallies one decoded request by op.
func (m *serverMetrics) count(op byte) {
	switch op {
	case opPut:
		m.reqPut.Inc()
	case opGet:
		m.reqGet.Inc()
	case opDrop:
		m.reqDrop.Inc()
	case opStat:
		m.reqStat.Inc()
	case opManifest:
		m.reqManifest.Inc()
	default:
		m.reqOther.Inc()
	}
}

// Observe registers the server's transport metrics in reg: requests served
// by op, raw bytes in/out, and the active-connection gauge — plus, for a
// durable server, the space's xlayer_staging_wal_* instruments. Call it
// right after construction, before clients connect; connections accepted
// earlier are not counted. A nil registry is ignored.
func (s *Server) Observe(reg *obs.Registry) {
	if reg == nil {
		return
	}
	if s.opts.DataDir != "" {
		s.space.ObserveWAL(reg)
	}
	const reqName = "xlayer_staging_server_requests_total"
	const reqHelp = "Requests served by the staging server, by operation."
	m := &serverMetrics{
		reqPut:      reg.Counter(reqName, reqHelp, "op", "put"),
		reqGet:      reg.Counter(reqName, reqHelp, "op", "get"),
		reqDrop:     reg.Counter(reqName, reqHelp, "op", "drop"),
		reqStat:     reg.Counter(reqName, reqHelp, "op", "stat"),
		reqManifest: reg.Counter(reqName, reqHelp, "op", "manifest"),
		reqOther:    reg.Counter(reqName, reqHelp, "op", "other"),
		bytesIn: reg.Counter("xlayer_staging_server_bytes_in_total",
			"Raw bytes read from staging clients."),
		bytesOut: reg.Counter("xlayer_staging_server_bytes_out_total",
			"Raw bytes written to staging clients."),
		activeConns: reg.Gauge("xlayer_staging_server_active_conns",
			"Client connections currently being served."),
	}
	const shedName = "xlayer_staging_admission_shed_total"
	const shedHelp = "Connections refused by admission control, by reason."
	m.admAdmitted = reg.Counter("xlayer_staging_admission_admitted_total",
		"Connections admitted for service by the staging server.")
	m.admQueued = reg.Counter("xlayer_staging_admission_queued_total",
		"Connections parked in the bounded accept backlog.")
	m.admShedMaxConns = reg.Counter(shedName, shedHelp, "reason", "max_conns")
	m.admShedBacklogFull = reg.Counter(shedName, shedHelp, "reason", "backlog_full")
	m.quotaRejected = reg.Counter("xlayer_staging_admission_quota_rejected_total",
		"Puts rejected server-side by a tenant byte/block quota.")
	s.metrics.Store(m)
}

// Trace installs a tracer for server-side child spans: every request that
// carries the trace-context extension emits one span for its decode/store
// (or read/encode) work, parented under the wire-propagated trace and
// parent-span IDs. Requests without the extension emit nothing — old
// clients stay span-silent. A nil tracer is ignored.
func (s *Server) Trace(tr *span.Tracer) {
	if tr == nil {
		return
	}
	s.tracer.Store(tr)
}

// countingConn tallies raw connection traffic into the server's counters.
type countingConn struct {
	net.Conn
	in, out *obs.Counter
}

func (c *countingConn) Read(b []byte) (int, error) {
	n, err := c.Conn.Read(b)
	c.in.Add(float64(n))
	return n, err
}

func (c *countingConn) Write(b []byte) (int, error) {
	n, err := c.Conn.Write(b)
	c.out.Add(float64(n))
	return n, err
}

// Serve starts a server on addr (e.g. "127.0.0.1:0") backed by space.
func Serve(addr string, space *Space) (*Server, error) {
	return ServeOptions(addr, space, ServerOptions{})
}

// ServeOptions starts a server on addr with explicit options, including
// DataDir persistence.
func ServeOptions(addr string, space *Space, opts ServerOptions) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewServer(ln, space, opts)
}

// ServeOn starts a server on an existing listener — the hook fault-injection
// harnesses use to interpose a wrapped listener (e.g. faultnet.Listen).
func ServeOn(ln net.Listener, space *Space) *Server {
	return ServeOnOptions(ln, space, ServerOptions{})
}

// ServeOnOptions starts a server on an existing listener with explicit
// admission options. It cannot report a recovery failure, so it refuses
// DataDir — use NewServer for durable servers.
func ServeOnOptions(ln net.Listener, space *Space, opts ServerOptions) *Server {
	if opts.DataDir != "" {
		panic("staging: ServeOnOptions cannot recover a DataDir; use NewServer")
	}
	s, _ := NewServer(ln, space, opts)
	return s
}

// NewServer is the full server constructor. When opts.DataDir is set the
// space is persisted under it first — recovering a previous incarnation's
// write-ahead log and snapshot — and a recovery failure closes ln and is
// returned instead of serving over wrong state.
func NewServer(ln net.Listener, space *Space, opts ServerOptions) (*Server, error) {
	var recovered *RecoverStats
	if opts.DataDir != "" {
		id := opts.ServerID
		if id == "" {
			id = "staging"
		}
		var err error
		recovered, err = space.Persist(opts.DataDir, id)
		if err != nil {
			ln.Close()
			return nil, err
		}
	}
	s := &Server{
		space:     space,
		ln:        ln,
		opts:      opts,
		recovered: recovered,
		conns:     make(map[net.Conn]*atomic.Bool),
		done:      make(chan struct{}),
	}
	if opts.MaxConns > 0 {
		s.slots = make(chan struct{}, opts.MaxConns)
		// Backlog <= 0 means no queue at all: skip the dispatcher so
		// admission is a pure slot-or-shed decision. (A dispatcher parked on
		// an unbuffered channel would still accept one in-flight handoff,
		// silently granting a queue of one.)
		if opts.Backlog > 0 {
			s.backlog = make(chan net.Conn, opts.Backlog)
			s.wg.Add(1)
			go s.dispatchLoop()
		}
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// RecoverStats reports what DataDir recovery restored at construction
// (nil for a non-durable server).
func (s *Server) RecoverStats() *RecoverStats { return s.recovered }

// Close stops accepting connections, severs in-flight ones, drains the
// accept backlog, and waits for every handler goroutine to exit. A handler
// blocked mid-request cannot outlive Close: its connection is closed under
// it. A durable server's WAL file descriptor is dropped without a final
// flush — the hard-stop twin of Shutdown's fsync-and-close — which loses
// nothing acked, because every acked put was fsynced at append time. Close
// is idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	close(s.done)
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	if s.opts.DataDir != "" {
		s.space.CrashPersist()
	}
	return err
}

// Shutdown stops the server gracefully: it stops accepting, lets every
// handler finish the request it is currently serving (idle connections are
// interrupted), waits for all of them, and — for a durable server — flushes,
// fsyncs, and closes the space's write-ahead log. A request whose header
// had not fully arrived when Shutdown began may be severed; everything the
// server started serving completes with its response delivered. Shutdown
// and Close are each idempotent and safe to call in either order; the
// first call wins.
func (s *Server) Shutdown() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true // refuse new conns; make a later Close a no-op
	s.draining.Store(true)
	idle := make([]net.Conn, 0, len(s.conns))
	for c, busy := range s.conns {
		if !busy.Load() {
			idle = append(idle, c)
		}
	}
	s.mu.Unlock()
	close(s.done) // dispatchLoop drains the accept backlog
	err := s.ln.Close()
	// Expire the idle connections' pending header reads; busy handlers run
	// their request to completion and exit on the draining flag.
	for _, c := range idle {
		c.SetReadDeadline(time.Now())
	}
	s.wg.Wait()
	if s.opts.DataDir != "" {
		if cerr := s.space.ClosePersist(); err == nil {
			err = cerr
		}
	}
	return err
}

// AdmissionStats reports the server's cumulative admission tallies:
// connections admitted for service, connections that waited in the accept
// backlog, connections shed, and puts rejected by tenant quota. The
// counters are live independent of Observe, so harnesses can reconcile
// them against emitted events and registered metrics exactly.
func (s *Server) AdmissionStats() (admitted, queued, shed, quotaRejected int64) {
	return s.nAdmitted.Load(), s.nQueued.Load(), s.nShed.Load(), s.nQuota.Load()
}

// track registers conn for Close-time severing, returning its mid-request
// flag; it reports false when the server is already closed (the conn must
// be dropped, not served).
func (s *Server) track(conn net.Conn) (*atomic.Bool, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false
	}
	busy := &atomic.Bool{}
	s.conns[conn] = busy
	return busy, true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return
			}
			continue // transient accept error
		}
		s.admit(conn)
	}
}

// admit routes one accepted connection through admission control: serve
// immediately while a slot is free, park in the bounded backlog while all
// slots are busy, and shed — close with a refuse-with-reason event — when
// the backlog is full too. With no MaxConns every connection is served.
func (s *Server) admit(conn net.Conn) {
	if s.slots == nil {
		s.noteAdmitted()
		s.serveConn(conn)
		return
	}
	select {
	case s.slots <- struct{}{}:
		s.noteAdmitted()
		s.serveConn(conn)
		return
	default:
	}
	if s.backlog == nil {
		s.shed(conn)
		return
	}
	select {
	case s.backlog <- conn:
		s.nQueued.Add(1)
		if m := s.metrics.Load(); m != nil {
			m.admQueued.Inc()
		}
	default:
		s.shed(conn)
	}
}

// dispatchLoop promotes backlogged connections into service as handler
// slots free up, and drains the backlog on Close.
func (s *Server) dispatchLoop() {
	defer s.wg.Done()
	for {
		var conn net.Conn
		select {
		case <-s.done:
			s.drainBacklog()
			return
		case conn = <-s.backlog:
		}
		select {
		case <-s.done:
			conn.Close()
			s.drainBacklog()
			return
		case s.slots <- struct{}{}:
			s.noteAdmitted()
			s.serveConn(conn)
		}
	}
}

// drainBacklog closes every connection still parked at Close time.
func (s *Server) drainBacklog() {
	for {
		select {
		case c := <-s.backlog:
			c.Close()
		default:
			return
		}
	}
}

// shed refuses one connection deterministically: close it, bump the shed
// tallies, and emit the structured refuse-with-reason event.
func (s *Server) shed(conn net.Conn) {
	conn.Close()
	s.nShed.Add(1)
	reason := "max_conns"
	if s.opts.Backlog > 0 {
		reason = "backlog_full"
	}
	if m := s.metrics.Load(); m != nil {
		if reason == "max_conns" {
			m.admShedMaxConns.Inc()
		} else {
			m.admShedBacklogFull.Inc()
		}
	}
	s.opts.Events.AdmissionShed(reason, len(s.slots), len(s.backlog))
}

func (s *Server) noteAdmitted() {
	s.nAdmitted.Add(1)
	if m := s.metrics.Load(); m != nil {
		m.admAdmitted.Inc()
	}
}

// releaseSlot frees the handler slot a served connection held.
func (s *Server) releaseSlot() {
	if s.slots != nil {
		<-s.slots
	}
}

// serveConn spawns the handler goroutine for an admitted connection. The
// caller has already acquired a slot (when admission is on); the handler
// releases it on exit.
func (s *Server) serveConn(conn net.Conn) {
	busy, ok := s.track(conn)
	if !ok {
		conn.Close()
		s.releaseSlot()
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer s.releaseSlot()
		defer s.untrack(conn)
		defer conn.Close()
		served := conn
		if m := s.metrics.Load(); m != nil {
			m.activeConns.Add(1)
			defer m.activeConns.Add(-1)
			served = &countingConn{Conn: conn, in: m.bytesIn, out: m.bytesOut}
		}
		s.handle(served, busy)
	}()
}

// handle serves one connection until EOF, error, or drain. busy is raised
// while a request is mid-flight so Shutdown can tell handlers it may
// interrupt (idle, parked on the next header) from ones it must wait out.
func (s *Server) handle(conn net.Conn, busy *atomic.Bool) {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		if s.draining.Load() {
			return
		}
		if err := s.handleOne(r, w, busy); err != nil {
			return // connection-level error or clean EOF
		}
		if err := w.Flush(); err != nil {
			return
		}
		busy.Store(false)
	}
}

func (s *Server) handleOne(r *bufio.Reader, w *bufio.Writer, busy *atomic.Bool) error {
	var hdr [3]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	busy.Store(true)
	op := hdr[0] &^ opFlagTrace
	if m := s.metrics.Load(); m != nil {
		m.count(op)
	}
	if s.opts.RequestHook != nil {
		s.opts.RequestHook(op)
	}
	varLen := binary.LittleEndian.Uint16(hdr[1:])
	if varLen > 256 {
		return fmt.Errorf("%w: variable name too long", ErrProtocol)
	}
	nameBuf := make([]byte, varLen)
	if _, err := io.ReadFull(r, nameBuf); err != nil {
		return err
	}
	var verBuf [4]byte
	if _, err := io.ReadFull(r, verBuf[:]); err != nil {
		return err
	}
	varName := string(nameBuf)
	version := int(int32(binary.LittleEndian.Uint32(verBuf[:])))

	var ext traceExt
	if hdr[0]&opFlagTrace != 0 {
		var extBuf [traceExtSize]byte
		if _, err := io.ReadFull(r, extBuf[:]); err != nil {
			return err
		}
		ext = decodeTraceExt(extBuf)
	}
	if tr := s.tracer.Load(); tr != nil && ext.Trace != 0 {
		t0 := tr.NowNs()
		err := s.dispatch(op, varName, version, r, w)
		tr.RecordRemote(ext.Trace, ext.Parent, span.Op{
			Name:   "srv:" + opName(op),
			Layer:  span.LayerStagingExec,
			ExecNs: tr.NowNs() - t0,
			Err:    srvErrLabel(err),
			Detail: fmt.Sprintf("var=%s version=%d", varName, version),
		})
		return err
	}
	return s.dispatch(op, varName, version, r, w)
}

// noteQuotaRejected tallies one quota-rejected put and emits the
// tenant-attributed event.
func (s *Server) noteQuotaRejected(varName string, bytes int64) {
	s.nQuota.Add(1)
	if m := s.metrics.Load(); m != nil {
		m.quotaRejected.Inc()
	}
	s.opts.Events.QuotaRejected(TenantOf(varName), varName, bytes)
}

// opName renders an op byte for span names.
func opName(op byte) string {
	switch op {
	case opPut:
		return "put"
	case opGet:
		return "get"
	case opDrop:
		return "drop"
	case opStat:
		return "stat"
	case opManifest:
		return "manifest"
	}
	return "unknown"
}

// srvErrLabel reduces a dispatch error to a stable label for server spans.
func srvErrLabel(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrProtocol):
		return "protocol error"
	}
	return "transport error"
}

// dispatch serves one decoded request header's body and response.
func (s *Server) dispatch(op byte, varName string, version int, r *bufio.Reader, w *bufio.Writer) error {
	switch op {
	case opPut:
		var seqBuf [8]byte
		if _, err := io.ReadFull(r, seqBuf[:]); err != nil {
			return err
		}
		seq := int64(binary.LittleEndian.Uint64(seqBuf[:]))
		d, err := DecodeBlock(r)
		if err != nil {
			if errors.Is(err, ErrBadBlock) {
				w.WriteByte(statusBad)
				return nil
			}
			return err
		}
		switch err := s.space.PutSeq(varName, version, seq, d); {
		case errors.Is(err, ErrQuotaExceeded):
			s.noteQuotaRejected(varName, d.Bytes())
			return w.WriteByte(statusQuota)
		case errors.Is(err, ErrNoMemory):
			return w.WriteByte(statusNoMemory)
		case err != nil:
			return w.WriteByte(statusBad)
		default:
			return w.WriteByte(statusOK)
		}

	case opGet:
		var boxBuf [24]byte
		if _, err := io.ReadFull(r, boxBuf[:]); err != nil {
			return err
		}
		geti := func(i int) int { return int(int32(binary.LittleEndian.Uint32(boxBuf[4*i:]))) }
		region := grid.NewBox(grid.IV(geti(0), geti(1), geti(2)), grid.IV(geti(3), geti(4), geti(5)))
		blocks, err := s.space.GetBlocks(varName, version, region)
		if errors.Is(err, ErrNotFound) {
			return w.WriteByte(statusNotFound)
		}
		if err != nil {
			return w.WriteByte(statusBad)
		}
		if err := w.WriteByte(statusOK); err != nil {
			return err
		}
		var cnt [4]byte
		binary.LittleEndian.PutUint32(cnt[:], uint32(len(blocks)))
		if _, err := w.Write(cnt[:]); err != nil {
			return err
		}
		for _, b := range blocks {
			if err := EncodeBlock(w, b); err != nil {
				return err
			}
		}
		return nil

	case opDrop:
		freed := s.space.DropBefore(varName, version)
		if err := w.WriteByte(statusOK); err != nil {
			return err
		}
		var out [8]byte
		binary.LittleEndian.PutUint64(out[:], uint64(freed))
		_, err := w.Write(out[:])
		return err

	case opStat:
		if err := w.WriteByte(statusOK); err != nil {
			return err
		}
		var out [8]byte
		binary.LittleEndian.PutUint64(out[:], uint64(s.space.MemUsed()))
		_, err := w.Write(out[:])
		return err

	case opManifest:
		m, sizes := s.space.ContentManifestSized()
		var buf bytes.Buffer
		if err := EncodeManifest(&buf, m); err != nil {
			return w.WriteByte(statusBad)
		}
		if err := w.WriteByte(statusOK); err != nil {
			return err
		}
		var mlen [4]byte
		binary.LittleEndian.PutUint32(mlen[:], uint32(buf.Len()))
		if _, err := w.Write(mlen[:]); err != nil {
			return err
		}
		if _, err := w.Write(buf.Bytes()); err != nil {
			return err
		}
		var szBuf [8]byte
		for _, sz := range sizes {
			binary.LittleEndian.PutUint64(szBuf[:], uint64(sz))
			if _, err := w.Write(szBuf[:]); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("%w: unknown op %d", ErrProtocol, op)
}

// ClientOptions tunes the client's resilience behavior. The zero value
// selects the defaults noted on each field.
type ClientOptions struct {
	// OpTimeout bounds one attempt of one operation, reconnect included
	// (default 10s).
	OpTimeout time.Duration

	// MaxRetries is how many times a failed operation is retried after the
	// first attempt (default 3; negative disables retries entirely).
	MaxRetries int

	// BackoffBase is the first retry's delay; each further retry doubles it
	// up to BackoffMax (defaults 5ms and 250ms).
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// DialFunc replaces the transport dial — fault-injection harnesses use
	// it to interpose a faultnet wrapper (default net.DialTimeout over tcp).
	DialFunc func(addr string, timeout time.Duration) (net.Conn, error)

	// Events, when set, receives a structured event per transport retry and
	// reconnect. Client operations run synchronously on the caller's
	// goroutine, so with a deterministic fault plan the emitted sequence is
	// reproducible.
	Events *obs.Emitter

	// Metrics, when set, registers the client's cumulative retry/reconnect
	// counters (xlayer_staging_client_*) in this registry.
	Metrics *obs.Registry
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.OpTimeout == 0 {
		o.OpTimeout = 10 * time.Second
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 3
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.BackoffBase == 0 {
		o.BackoffBase = 5 * time.Millisecond
	}
	if o.BackoffMax == 0 {
		o.BackoffMax = 250 * time.Millisecond
	}
	if o.DialFunc == nil {
		o.DialFunc = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	return o
}

// Client talks to a staging Server. It is safe for concurrent use; requests
// on one client serialize over its single connection. Transport failures
// are retried with reconnect under the client's options; application-level
// outcomes (ErrNotFound, ErrNoMemory) are returned as-is.
type Client struct {
	addr string
	opts ClientOptions

	retries    atomic.Int64 // retry attempts across all operations
	reconnects atomic.Int64 // successful re-dials after a failure
	seq        atomic.Int64 // last logical-put sequence number issued
	seqBase    int64        // this client's slice of the process seq space

	// Wire trace context (SetSpanScope): stamped into the request-header
	// extension while traceID is nonzero.
	traceID  atomic.Uint64
	parentID atomic.Uint64

	// Registry-backed mirrors of retries/reconnects (live but unregistered
	// instruments when ClientOptions.Metrics is nil, so no branching).
	mRetries    *obs.Counter
	mReconnects *obs.Counter

	mu        sync.Mutex
	conn      net.Conn
	r         *bufio.Reader
	w         *bufio.Writer
	connected bool // a connection has been established at least once
	closed    bool
}

// clientSeqSlices hands each client in this process a disjoint 2^32-wide
// slice of the sequence space, so concurrent clients writing the same
// variable never dedupe each other's puts. Clients in different processes
// are distinguished by their separate connections' write ordering only;
// cross-process seq collisions would need 2^32 puts from one client.
var clientSeqSlices atomic.Int64

func newSeqBase() int64 { return clientSeqSlices.Add(1) << 32 }

// Dial connects to a staging server with default resilience options.
func Dial(addr string) (*Client, error) {
	return DialOptions(addr, ClientOptions{})
}

// NewClient builds a client without dialing: the first operation connects
// lazily under the retry policy. Use it when the server may legitimately be
// unreachable at construction time (fault-injection runs) and failures
// should surface as ErrStagingUnavailable per operation instead.
func NewClient(addr string, opts ClientOptions) *Client {
	c := &Client{addr: addr, opts: opts.withDefaults(), seqBase: newSeqBase()}
	c.initMetrics()
	return c
}

// initMetrics binds the client's transport counters. With no registry the
// instruments are live but unregistered, so update sites never branch.
func (c *Client) initMetrics() {
	c.mRetries = c.opts.Metrics.Counter("xlayer_staging_client_retries_total",
		"Transport retry attempts across all staging operations.")
	c.mReconnects = c.opts.Metrics.Counter("xlayer_staging_client_reconnects_total",
		"Successful staging re-dials after a transport failure.")
}

// DialOptions connects to a staging server with explicit options. The
// initial connection attempt runs under OpTimeout and its failure is
// returned immediately (no retry): a server that was never there is a
// configuration error, not a transient fault.
func DialOptions(addr string, opts ClientOptions) (*Client, error) {
	c := &Client{addr: addr, opts: opts.withDefaults(), seqBase: newSeqBase()}
	c.initMetrics()
	conn, err := c.opts.DialFunc(addr, c.opts.OpTimeout)
	if err != nil {
		return nil, err
	}
	c.attach(conn)
	return c, nil
}

// attach installs conn as the client's current connection.
func (c *Client) attach(conn net.Conn) {
	c.conn = conn
	c.r = bufio.NewReader(conn)
	c.w = bufio.NewWriter(conn)
	c.connected = true
}

// dropConnLocked severs the current connection after a failure so the next
// attempt starts from a clean dial (the stream may be desynced mid-message).
func (c *Client) dropConnLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
		c.r, c.w = nil, nil
	}
}

// Close closes the connection; operations in flight or issued later fail
// with net.ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	c.r, c.w = nil, nil
	return err
}

// TransportStats reports the cumulative retry and reconnect counts — the
// observability hook the workflow copies into its per-step trace records.
func (c *Client) TransportStats() (retries, reconnects int64) {
	return c.retries.Load(), c.reconnects.Load()
}

// SetSpanScope installs the trace context stamped into subsequent requests'
// header extension: the current phase span's (trace, span) IDs, under which
// a traced server parents its per-request child spans. A zero trace
// disables stamping and restores the exact pre-extension byte stream —
// required when the server predates the extension, which rejects flagged
// ops as unknown.
func (c *Client) SetSpanScope(trace, parent uint64) {
	c.traceID.Store(trace)
	c.parentID.Store(parent)
}

// errDetail reduces a transport error to a stable, address-free label for
// the event stream: raw net errors embed ephemeral ports, which would stop
// seeded fault runs from reproducing their event log byte for byte.
func errDetail(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, os.ErrDeadlineExceeded):
		return "op timeout"
	case errors.Is(err, syscall.ECONNREFUSED):
		return "connection refused"
	case errors.Is(err, syscall.ECONNRESET):
		return "connection reset"
	case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, net.ErrClosed):
		return "connection closed"
	}
	// Injected faults describe themselves deterministically.
	if s := err.Error(); strings.Contains(s, "faultnet: ") {
		return s[strings.Index(s, "faultnet: "):]
	}
	var oe *net.OpError
	if errors.As(err, &oe) {
		return oe.Op + " failed"
	}
	return "transport error"
}

// do runs op under the retry policy: each attempt gets a fresh per-op
// deadline; any transport or protocol error drops the connection, backs
// off, re-dials and replays. Application-level results (nil, ErrNotFound,
// ErrNoMemory, ErrQuotaExceeded) end the loop immediately. When the budget is exhausted the
// last error is wrapped in ErrStagingUnavailable.
func (c *Client) do(op func() error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var lastErr error
	for attempt := 0; attempt <= c.opts.MaxRetries; attempt++ {
		if c.closed {
			return net.ErrClosed
		}
		if attempt > 0 {
			c.retries.Add(1)
			c.mRetries.Inc()
			if c.opts.Events != nil {
				c.opts.Events.StagingRetry(attempt, errDetail(lastErr))
			}
			backoff := c.opts.BackoffMax
			if shift := attempt - 1; shift < 20 {
				if b := c.opts.BackoffBase << shift; b < backoff {
					backoff = b
				}
			}
			time.Sleep(backoff)
		}
		if c.conn == nil {
			conn, err := c.opts.DialFunc(c.addr, c.opts.OpTimeout)
			if err != nil {
				lastErr = err
				continue
			}
			// A lazily-built client's first successful dial is an initial
			// connection, not a re-dial: only count a reconnect when a
			// previously established connection was lost.
			redial := c.connected
			c.attach(conn)
			if redial {
				c.reconnects.Add(1)
				c.mReconnects.Inc()
				c.opts.Events.StagingReconnect()
			}
		}
		c.conn.SetDeadline(time.Now().Add(c.opts.OpTimeout))
		err := op()
		if err == nil || errors.Is(err, ErrNotFound) || errors.Is(err, ErrNoMemory) ||
			errors.Is(err, ErrQuotaExceeded) {
			c.conn.SetDeadline(time.Time{})
			return err
		}
		lastErr = err
		c.dropConnLocked()
	}
	return fmt.Errorf("%w: %d attempts failed, last: %v", ErrStagingUnavailable, c.opts.MaxRetries+1, lastErr)
}

func (c *Client) writeHeader(op byte, varName string, version int) error {
	if len(varName) > 256 {
		return fmt.Errorf("%w: variable name too long", ErrProtocol)
	}
	trace := c.traceID.Load()
	var hdr [3]byte
	hdr[0] = op
	if trace != 0 {
		hdr[0] |= opFlagTrace
	}
	binary.LittleEndian.PutUint16(hdr[1:], uint16(len(varName)))
	if _, err := c.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := c.w.WriteString(varName); err != nil {
		return err
	}
	var ver [4]byte
	binary.LittleEndian.PutUint32(ver[:], uint32(int32(version)))
	if _, err := c.w.Write(ver[:]); err != nil {
		return err
	}
	if trace != 0 {
		ext := encodeTraceExt(traceExt{Trace: trace, Parent: c.parentID.Load()})
		if _, err := c.w.Write(ext[:]); err != nil {
			return err
		}
	}
	return nil
}

func (c *Client) readStatus() (byte, error) {
	if err := c.w.Flush(); err != nil {
		return statusBad, err
	}
	return c.r.ReadByte()
}

// Put stores a block of varName at version on the server. Each call is one
// logical put with a sequence number fixed across its retries, so a replay
// after a lost response replaces the stored block instead of duplicating it.
func (c *Client) Put(varName string, version int, d *field.BoxData) error {
	seq := c.seqBase + c.seq.Add(1)
	return c.do(func() error { return c.put(varName, version, seq, d) })
}

// PutRepair stores a block restored by the pool's anti-entropy repair. The
// sequence number is negated so the server can tell a restored copy from a
// first-hand write: a normal put racing the repair of its own block then
// replaces the restored copy instead of duplicating it, while the unique
// magnitude keeps retries idempotent.
func (c *Client) PutRepair(varName string, version int, d *field.BoxData) error {
	seq := -(c.seqBase + c.seq.Add(1))
	return c.do(func() error { return c.put(varName, version, seq, d) })
}

func (c *Client) put(varName string, version int, seq int64, d *field.BoxData) error {
	if err := c.writeHeader(opPut, varName, version); err != nil {
		return err
	}
	var seqBuf [8]byte
	binary.LittleEndian.PutUint64(seqBuf[:], uint64(seq))
	if _, err := c.w.Write(seqBuf[:]); err != nil {
		return err
	}
	if err := EncodeBlock(c.w, d); err != nil {
		return err
	}
	st, err := c.readStatus()
	if err != nil {
		return err
	}
	switch st {
	case statusOK:
		return nil
	case statusNoMemory:
		return ErrNoMemory
	case statusQuota:
		return ErrQuotaExceeded
	default:
		return fmt.Errorf("%w: put status %d", ErrProtocol, st)
	}
}

// GetBlocks fetches the stored blocks of varName at version intersecting
// region.
func (c *Client) GetBlocks(varName string, version int, region grid.Box) ([]*field.BoxData, error) {
	var out []*field.BoxData
	err := c.do(func() error {
		var err error
		out, err = c.getBlocks(varName, version, region)
		return err
	})
	return out, err
}

func (c *Client) getBlocks(varName string, version int, region grid.Box) ([]*field.BoxData, error) {
	if err := c.writeHeader(opGet, varName, version); err != nil {
		return nil, err
	}
	var boxBuf [24]byte
	for i, v := range []int{region.Lo.X, region.Lo.Y, region.Lo.Z, region.Hi.X, region.Hi.Y, region.Hi.Z} {
		binary.LittleEndian.PutUint32(boxBuf[4*i:], uint32(int32(v)))
	}
	if _, err := c.w.Write(boxBuf[:]); err != nil {
		return nil, err
	}
	st, err := c.readStatus()
	if err != nil {
		return nil, err
	}
	switch st {
	case statusNotFound:
		return nil, ErrNotFound
	case statusOK:
	default:
		return nil, fmt.Errorf("%w: get status %d", ErrProtocol, st)
	}
	var cnt [4]byte
	if _, err := io.ReadFull(c.r, cnt[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(cnt[:])
	if n > 1<<20 {
		return nil, fmt.Errorf("%w: absurd block count %d", ErrProtocol, n)
	}
	out := make([]*field.BoxData, 0, n)
	for i := uint32(0); i < n; i++ {
		b, err := DecodeBlock(c.r)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// DropBefore evicts versions of varName below version, returning bytes
// freed on the server.
func (c *Client) DropBefore(varName string, version int) (int64, error) {
	var freed int64
	err := c.do(func() error {
		var err error
		freed, err = c.dropBefore(varName, version)
		return err
	})
	return freed, err
}

func (c *Client) dropBefore(varName string, version int) (int64, error) {
	if err := c.writeHeader(opDrop, varName, version); err != nil {
		return 0, err
	}
	st, err := c.readStatus()
	if err != nil {
		return 0, err
	}
	if st != statusOK {
		return 0, fmt.Errorf("%w: drop status %d", ErrProtocol, st)
	}
	var out [8]byte
	if _, err := io.ReadFull(c.r, out[:]); err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(out[:])), nil
}

// Manifest fetches the server's advertised content manifest plus each
// entry's total encoded payload bytes (aligned with the sorted entries) —
// what the pool's rejoin repair diffs against its expectation to ship only
// the blocks the server is actually missing. A pre-manifest server rejects
// the op by dropping the connection, which surfaces here as
// ErrStagingUnavailable; callers treat that as "no advertisement" and fall
// back to full repair.
func (c *Client) Manifest() (Manifest, []int64, error) {
	var m Manifest
	var sizes []int64
	err := c.do(func() error {
		var err error
		m, sizes, err = c.manifest()
		return err
	})
	return m, sizes, err
}

func (c *Client) manifest() (Manifest, []int64, error) {
	if err := c.writeHeader(opManifest, "", 0); err != nil {
		return Manifest{}, nil, err
	}
	st, err := c.readStatus()
	if err != nil {
		return Manifest{}, nil, err
	}
	if st != statusOK {
		return Manifest{}, nil, fmt.Errorf("%w: manifest status %d", ErrProtocol, st)
	}
	var mlen [4]byte
	if _, err := io.ReadFull(c.r, mlen[:]); err != nil {
		return Manifest{}, nil, err
	}
	n := binary.LittleEndian.Uint32(mlen[:])
	if n > 64<<20 {
		return Manifest{}, nil, fmt.Errorf("%w: absurd manifest size %d", ErrProtocol, n)
	}
	raw := make([]byte, n)
	if _, err := io.ReadFull(c.r, raw); err != nil {
		return Manifest{}, nil, err
	}
	m, err := DecodeManifest(bytes.NewReader(raw))
	if err != nil {
		return Manifest{}, nil, fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	sizes := make([]int64, len(m.Entries))
	var szBuf [8]byte
	for i := range sizes {
		if _, err := io.ReadFull(c.r, szBuf[:]); err != nil {
			return Manifest{}, nil, err
		}
		sz := int64(binary.LittleEndian.Uint64(szBuf[:]))
		if sz < 0 {
			return Manifest{}, nil, fmt.Errorf("%w: negative entry size", ErrProtocol)
		}
		sizes[i] = sz
	}
	return m, sizes, nil
}

// MemUsed reports the server's total stored bytes.
func (c *Client) MemUsed() (int64, error) {
	var used int64
	err := c.do(func() error {
		var err error
		used, err = c.memUsed()
		return err
	})
	return used, err
}

func (c *Client) memUsed() (int64, error) {
	if err := c.writeHeader(opStat, "", 0); err != nil {
		return 0, err
	}
	st, err := c.readStatus()
	if err != nil {
		return 0, err
	}
	if st != statusOK {
		return 0, fmt.Errorf("%w: stat status %d", ErrProtocol, st)
	}
	var out [8]byte
	if _, err := io.ReadFull(c.r, out[:]); err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(out[:])), nil
}
