package staging

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crosslayer/internal/grid"
)

func TestLockManagerReadersShareWritersExclude(t *testing.T) {
	lm := NewLockManager()
	lm.LockRead("v", 0)
	lm.LockRead("v", 0) // concurrent readers allowed
	writerIn := make(chan struct{})
	go func() {
		lm.LockWrite("v", 0)
		close(writerIn)
		lm.UnlockWrite("v", 0)
	}()
	select {
	case <-writerIn:
		t.Fatal("writer acquired while readers held the lock")
	case <-time.After(20 * time.Millisecond):
	}
	lm.UnlockRead("v", 0)
	lm.UnlockRead("v", 0)
	select {
	case <-writerIn:
	case <-time.After(time.Second):
		t.Fatal("writer never acquired after readers released")
	}
}

func TestLockManagerWriterBlocksReaders(t *testing.T) {
	lm := NewLockManager()
	lm.LockWrite("v", 1)
	readerIn := make(chan struct{})
	go func() {
		lm.LockRead("v", 1)
		close(readerIn)
		lm.UnlockRead("v", 1)
	}()
	select {
	case <-readerIn:
		t.Fatal("reader acquired while writer held the lock")
	case <-time.After(20 * time.Millisecond):
	}
	lm.UnlockWrite("v", 1)
	select {
	case <-readerIn:
	case <-time.After(time.Second):
		t.Fatal("reader never acquired after writer released")
	}
}

func TestLockManagerVersionsIndependent(t *testing.T) {
	lm := NewLockManager()
	lm.LockWrite("v", 0)
	done := make(chan struct{})
	go func() {
		lm.LockWrite("v", 1) // different version: no contention
		lm.UnlockWrite("v", 1)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("independent version lock blocked")
	}
	lm.UnlockWrite("v", 0)
}

func TestLockManagerMisuse(t *testing.T) {
	lm := NewLockManager()
	for _, fn := range []func(){
		func() { lm.UnlockRead("x", 0) },
		func() { lm.UnlockWrite("x", 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("misuse should panic")
				}
			}()
			fn()
		}()
	}
}

func TestNotifierDelivers(t *testing.T) {
	n := NewNotifier()
	ch := n.Subscribe("rho", 4)
	other := n.Subscribe("u", 4)
	n.Publish(Event{Var: "rho", Version: 3, Bytes: 100})
	select {
	case ev := <-ch:
		if ev.Version != 3 || ev.Bytes != 100 {
			t.Errorf("event = %+v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("no event delivered")
	}
	select {
	case ev := <-other:
		t.Fatalf("wrong-variable subscriber got %+v", ev)
	default:
	}
}

func TestNotifierDropsWhenSaturated(t *testing.T) {
	n := NewNotifier()
	ch := n.Subscribe("rho", 1)
	n.Publish(Event{Var: "rho", Version: 0})
	n.Publish(Event{Var: "rho", Version: 1}) // buffer full: dropped
	if got := len(ch); got != 1 {
		t.Errorf("buffered events = %d, want 1", got)
	}
	if ev := <-ch; ev.Version != 0 {
		t.Errorf("kept event = %+v, want the first", ev)
	}
}

func TestCoordinatedHandoff(t *testing.T) {
	cs := NewCoordinatedSpace(NewSpace(2, 0, dom()))
	events := cs.Notifier.Subscribe("rho", 8)

	var consumed atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // reader: wait for notifications, then read under lock
		defer wg.Done()
		for i := 0; i < 3; i++ {
			ev := <-events
			cs.Locks.LockRead(ev.Var, ev.Version)
			blocks, err := cs.GetBlocks(ev.Var, ev.Version, dom())
			cs.Locks.UnlockRead(ev.Var, ev.Version)
			if err != nil {
				t.Errorf("read after notify: %v", err)
				return
			}
			for _, b := range blocks {
				consumed.Add(b.NumCells())
			}
		}
	}()

	for v := 0; v < 3; v++ {
		if err := cs.PutLocked("rho", v,
			block(grid.IV(0, 0, 0), 4, float64(v)),
			block(grid.IV(8, 0, 0), 4, float64(v))); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if got := consumed.Load(); got != 3*2*64 {
		t.Errorf("consumed %d cells, want %d", got, 3*2*64)
	}
}

// TestLockManagerStress races many readers and writers over a handful of
// keys — run under -race this is the memory-model check for the cond-based
// lock table; the invariant checked is mutual exclusion of writers against
// everyone on the same key.
func TestLockManagerStress(t *testing.T) {
	lm := NewLockManager()
	const keys = 4
	// holders[k] is >0 while readers hold key k, -1 while a writer does.
	var holders [keys]atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := (g + i) % keys
				if g%4 == 0 { // every fourth goroutine writes
					lm.LockWrite("v", k)
					if !holders[k].CompareAndSwap(0, -1) {
						t.Errorf("writer entered key %d while held", k)
					}
					holders[k].Store(0)
					lm.UnlockWrite("v", k)
				} else {
					lm.LockRead("v", k)
					if holders[k].Add(1) <= 0 {
						t.Errorf("reader entered key %d while a writer held it", k)
					}
					holders[k].Add(-1)
					lm.UnlockRead("v", k)
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestNotifierStress publishes from many goroutines while subscribers come
// and go — under -race this exercises Subscribe/Publish interleavings; the
// delivered events must all be well-formed and nothing may deadlock.
func TestNotifierStress(t *testing.T) {
	n := NewNotifier()
	var received atomic.Int64
	done := make(chan struct{})
	var wg sync.WaitGroup
	for s := 0; s < 8; s++ {
		ch := n.Subscribe("rho", 64)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case ev := <-ch:
					if ev.Var != "rho" {
						t.Errorf("subscriber got foreign event %+v", ev)
					}
					received.Add(1)
				case <-done:
					return
				}
			}
		}()
	}
	var pubs sync.WaitGroup
	for p := 0; p < 8; p++ {
		pubs.Add(1)
		go func(p int) {
			defer pubs.Done()
			for i := 0; i < 100; i++ {
				n.Publish(Event{Var: "rho", Version: p*100 + i})
				n.Subscribe("other", 1) // churn the sub table concurrently
			}
		}(p)
	}
	pubs.Wait()
	close(done)
	wg.Wait()
	if received.Load() == 0 {
		t.Error("no events delivered under stress")
	}
}
