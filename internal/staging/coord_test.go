package staging

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crosslayer/internal/grid"
)

func TestLockManagerReadersShareWritersExclude(t *testing.T) {
	lm := NewLockManager()
	lm.LockRead("v", 0)
	lm.LockRead("v", 0) // concurrent readers allowed
	writerIn := make(chan struct{})
	go func() {
		lm.LockWrite("v", 0)
		close(writerIn)
		lm.UnlockWrite("v", 0)
	}()
	select {
	case <-writerIn:
		t.Fatal("writer acquired while readers held the lock")
	case <-time.After(20 * time.Millisecond):
	}
	lm.UnlockRead("v", 0)
	lm.UnlockRead("v", 0)
	select {
	case <-writerIn:
	case <-time.After(time.Second):
		t.Fatal("writer never acquired after readers released")
	}
}

func TestLockManagerWriterBlocksReaders(t *testing.T) {
	lm := NewLockManager()
	lm.LockWrite("v", 1)
	readerIn := make(chan struct{})
	go func() {
		lm.LockRead("v", 1)
		close(readerIn)
		lm.UnlockRead("v", 1)
	}()
	select {
	case <-readerIn:
		t.Fatal("reader acquired while writer held the lock")
	case <-time.After(20 * time.Millisecond):
	}
	lm.UnlockWrite("v", 1)
	select {
	case <-readerIn:
	case <-time.After(time.Second):
		t.Fatal("reader never acquired after writer released")
	}
}

func TestLockManagerVersionsIndependent(t *testing.T) {
	lm := NewLockManager()
	lm.LockWrite("v", 0)
	done := make(chan struct{})
	go func() {
		lm.LockWrite("v", 1) // different version: no contention
		lm.UnlockWrite("v", 1)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("independent version lock blocked")
	}
	lm.UnlockWrite("v", 0)
}

func TestLockManagerMisuse(t *testing.T) {
	lm := NewLockManager()
	for _, fn := range []func(){
		func() { lm.UnlockRead("x", 0) },
		func() { lm.UnlockWrite("x", 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("misuse should panic")
				}
			}()
			fn()
		}()
	}
}

func TestNotifierDelivers(t *testing.T) {
	n := NewNotifier()
	ch := n.Subscribe("rho", 4)
	other := n.Subscribe("u", 4)
	n.Publish(Event{Var: "rho", Version: 3, Bytes: 100})
	select {
	case ev := <-ch:
		if ev.Version != 3 || ev.Bytes != 100 {
			t.Errorf("event = %+v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("no event delivered")
	}
	select {
	case ev := <-other:
		t.Fatalf("wrong-variable subscriber got %+v", ev)
	default:
	}
}

func TestNotifierDropsWhenSaturated(t *testing.T) {
	n := NewNotifier()
	ch := n.Subscribe("rho", 1)
	n.Publish(Event{Var: "rho", Version: 0})
	n.Publish(Event{Var: "rho", Version: 1}) // buffer full: dropped
	if got := len(ch); got != 1 {
		t.Errorf("buffered events = %d, want 1", got)
	}
	if ev := <-ch; ev.Version != 0 {
		t.Errorf("kept event = %+v, want the first", ev)
	}
}

func TestCoordinatedHandoff(t *testing.T) {
	cs := NewCoordinatedSpace(NewSpace(2, 0, dom()))
	events := cs.Notifier.Subscribe("rho", 8)

	var consumed atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // reader: wait for notifications, then read under lock
		defer wg.Done()
		for i := 0; i < 3; i++ {
			ev := <-events
			cs.Locks.LockRead(ev.Var, ev.Version)
			blocks, err := cs.GetBlocks(ev.Var, ev.Version, dom())
			cs.Locks.UnlockRead(ev.Var, ev.Version)
			if err != nil {
				t.Errorf("read after notify: %v", err)
				return
			}
			for _, b := range blocks {
				consumed.Add(b.NumCells())
			}
		}
	}()

	for v := 0; v < 3; v++ {
		if err := cs.PutLocked("rho", v,
			block(grid.IV(0, 0, 0), 4, float64(v)),
			block(grid.IV(8, 0, 0), 4, float64(v))); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if got := consumed.Load(); got != 3*2*64 {
		t.Errorf("consumed %d cells, want %d", got, 3*2*64)
	}
}
