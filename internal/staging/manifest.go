package staging

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
)

// Manifest is a point-in-time snapshot of what the pool believes it holds:
// for every live (variable, version), how many blocks were stored. It is
// the unit the soak tests audit — after a faulted run, every manifest entry
// must still be readable from some replica — and the payload the repair
// machinery conceptually replays, externalized with a canonical binary
// codec so it can be persisted, diffed, and fuzzed.
type Manifest struct {
	Entries []ManifestEntry
}

// ManifestEntry records one (variable, version) and the number of blocks
// the pool accepted for it. Blocks counts Put calls, so it equals distinct
// stored boxes only when each box is put once per version — the workflow's
// pattern (each analysis block is shipped exactly once per step).
type ManifestEntry struct {
	Var     string
	Version int
	Blocks  int
}

// Equal reports whether two manifests are identical.
func (m Manifest) Equal(o Manifest) bool {
	if len(m.Entries) != len(o.Entries) {
		return false
	}
	for i := range m.Entries {
		if m.Entries[i] != o.Entries[i] {
			return false
		}
	}
	return true
}

// sortEntries orders entries canonically: by variable, then version.
func sortEntries(entries []ManifestEntry) {
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Var != entries[j].Var {
			return entries[i].Var < entries[j].Var
		}
		return entries[i].Version < entries[j].Version
	})
}

// Manifest snapshots the pool's live map, canonically sorted.
func (p *Pool) Manifest() Manifest {
	p.stateMu.Lock()
	defer p.stateMu.Unlock()
	var m Manifest
	for varName, vs := range p.live {
		for ver, blocks := range vs {
			m.Entries = append(m.Entries, ManifestEntry{Var: varName, Version: ver, Blocks: blocks})
		}
	}
	sortEntries(m.Entries)
	return m
}

// RestoreManifest re-arms the pool's live map from a journaled manifest —
// the checkpoint/restart path: a resumed pool must know what its previous
// incarnation stored so rejoin repair and the durability audit keep
// covering pre-crash data. Entries merge by max block count, so replaying
// a manifest over state the resumed run already re-recorded never shrinks
// the audit's expectations. The data itself is not moved: the servers (or
// their surviving replicas) still hold it, and the existing seq-tagged
// idempotent puts make any overlapping re-puts harmless.
func (p *Pool) RestoreManifest(m Manifest) {
	p.stateMu.Lock()
	defer p.stateMu.Unlock()
	for _, e := range m.Entries {
		vs := p.live[e.Var]
		if vs == nil {
			vs = make(map[int]int)
			p.live[e.Var] = vs
		}
		if e.Blocks > vs[e.Version] {
			vs[e.Version] = e.Blocks
		}
	}
}

// Wire format of an encoded manifest (all integers big-endian):
//
//	magic   uint32  "XLM1"
//	count   uint32  number of entries, <= manifestMaxEntries
//	entry*: varLen  uint16  1..manifestMaxVar
//	        var     []byte
//	        version int32   >= 0
//	        blocks  int32   >= 1
//
// Entries must be strictly ascending by (var, version): the canonical form
// makes Encode∘Decode and Decode∘Encode both identities, which is what the
// fuzz target checks.
const (
	manifestMagic      = 0x584c4d31 // "XLM1"
	manifestMaxEntries = 1 << 20
	manifestMaxVar     = 256
)

// ErrBadManifest tags every decode failure.
var ErrBadManifest = errors.New("staging: bad manifest")

// EncodeManifest writes m in the canonical wire form. Entries are sorted
// into canonical order first; entries with an empty/oversized variable
// name, a negative version, or a non-positive block count are rejected.
func EncodeManifest(w io.Writer, m Manifest) error {
	entries := make([]ManifestEntry, len(m.Entries))
	copy(entries, m.Entries)
	sortEntries(entries)
	if len(entries) > manifestMaxEntries {
		return fmt.Errorf("staging: manifest has %d entries (max %d)", len(entries), manifestMaxEntries)
	}
	for i, e := range entries {
		if len(e.Var) == 0 || len(e.Var) > manifestMaxVar {
			return fmt.Errorf("staging: manifest var %q has bad length", e.Var)
		}
		if e.Version < 0 || e.Version > 1<<30 {
			return fmt.Errorf("staging: manifest version %d out of range", e.Version)
		}
		if e.Blocks < 1 || e.Blocks > 1<<30 {
			return fmt.Errorf("staging: manifest block count %d out of range", e.Blocks)
		}
		if i > 0 && entries[i-1].Var == e.Var && entries[i-1].Version == e.Version {
			return fmt.Errorf("staging: duplicate manifest entry %s@%d", e.Var, e.Version)
		}
	}
	buf := make([]byte, 0, 8)
	buf = binary.BigEndian.AppendUint32(buf, manifestMagic)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(entries)))
	for _, e := range entries {
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(e.Var)))
		buf = append(buf, e.Var...)
		buf = binary.BigEndian.AppendUint32(buf, uint32(e.Version))
		buf = binary.BigEndian.AppendUint32(buf, uint32(e.Blocks))
	}
	_, err := w.Write(buf)
	return err
}

// DecodeManifest reads one canonical manifest. Hostile input cannot force
// large allocations: lengths are bounded before any allocation, and the
// strict (var, version) ordering is enforced so every valid encoding has
// exactly one decoding and vice versa.
func DecodeManifest(r io.Reader) (Manifest, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Manifest{}, fmt.Errorf("%w: short header: %v", ErrBadManifest, err)
	}
	if binary.BigEndian.Uint32(hdr[:4]) != manifestMagic {
		return Manifest{}, fmt.Errorf("%w: bad magic", ErrBadManifest)
	}
	count := binary.BigEndian.Uint32(hdr[4:])
	if count > manifestMaxEntries {
		return Manifest{}, fmt.Errorf("%w: %d entries exceeds max", ErrBadManifest, count)
	}
	var m Manifest
	var nameBuf [manifestMaxVar]byte
	for i := uint32(0); i < count; i++ {
		var lenBuf [2]byte
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			return Manifest{}, fmt.Errorf("%w: short entry: %v", ErrBadManifest, err)
		}
		varLen := binary.BigEndian.Uint16(lenBuf[:])
		if varLen == 0 || varLen > manifestMaxVar {
			return Manifest{}, fmt.Errorf("%w: var length %d out of range", ErrBadManifest, varLen)
		}
		if _, err := io.ReadFull(r, nameBuf[:varLen]); err != nil {
			return Manifest{}, fmt.Errorf("%w: short var name: %v", ErrBadManifest, err)
		}
		var numBuf [8]byte
		if _, err := io.ReadFull(r, numBuf[:]); err != nil {
			return Manifest{}, fmt.Errorf("%w: short entry tail: %v", ErrBadManifest, err)
		}
		e := ManifestEntry{
			Var:     string(nameBuf[:varLen]),
			Version: int(binary.BigEndian.Uint32(numBuf[:4])),
			Blocks:  int(binary.BigEndian.Uint32(numBuf[4:])),
		}
		if e.Version < 0 || e.Version > 1<<30 {
			return Manifest{}, fmt.Errorf("%w: version %d out of range", ErrBadManifest, e.Version)
		}
		if e.Blocks < 1 || e.Blocks > 1<<30 {
			return Manifest{}, fmt.Errorf("%w: block count %d out of range", ErrBadManifest, e.Blocks)
		}
		if n := len(m.Entries); n > 0 {
			prev := m.Entries[n-1]
			if prev.Var > e.Var || (prev.Var == e.Var && prev.Version >= e.Version) {
				return Manifest{}, fmt.Errorf("%w: entries not strictly ordered at %s@%d", ErrBadManifest, e.Var, e.Version)
			}
		}
		m.Entries = append(m.Entries, e)
	}
	return m, nil
}

// Audit verifies that every block a manifest claims is still readable from
// some replica: for each entry it unions the distinct block boxes found
// across the full replica set of every shard (querying primary and replica
// variables directly, bypassing breaker state — a down endpoint is simply
// unreadable) and counts the shortfall against the recorded block count.
// It returns the total number of missing blocks; zero means no data loss.
//
// Box identity is the audit unit, so the count is meaningful when each box
// is put once per version (see ManifestEntry.Blocks). Audit is a test and
// post-mortem facility: it issues full-region reads against every
// endpoint and must not race a workload that is still mutating the pool.
func (p *Pool) Audit(m Manifest) (missing int) {
	n := len(p.eps)
	for _, e := range m.Entries {
		seen := make(map[string]struct{})
		for shard := 0; shard < n; shard++ {
			for j := 0; j < p.replicas; j++ {
				ep := p.eps[(shard+j)%n]
				name := e.Var
				if j > 0 {
					name = replicaVar(e.Var, shard)
				}
				blocks, err := ep.client.GetBlocks(name, e.Version, allRegion)
				if err != nil {
					continue // unreachable endpoint or empty replica: not a source
				}
				for _, b := range blocks {
					seen[fmt.Sprintf("%v-%v-%d", b.Box.Lo, b.Box.Hi, b.NComp)] = struct{}{}
				}
			}
		}
		if len(seen) < e.Blocks {
			missing += e.Blocks - len(seen)
		}
	}
	return missing
}

// AuditManifest audits the pool against its own current manifest.
func (p *Pool) AuditManifest() (missing int) {
	return p.Audit(p.Manifest())
}
