package staging

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"crosslayer/internal/grid"
)

// persistSpace makes a fresh persisted space over dir.
func persistSpace(t *testing.T, dir string) *Space {
	t.Helper()
	sp := NewSpace(2, 0, dom())
	if _, err := sp.Persist(dir, "s0"); err != nil {
		t.Fatalf("Persist: %v", err)
	}
	return sp
}

// recoverSpace stands up a second incarnation over the same dir.
func recoverSpace(t *testing.T, dir string) (*Space, *RecoverStats) {
	t.Helper()
	sp := NewSpace(2, 0, dom())
	st, err := sp.Persist(dir, "s0")
	if err != nil {
		t.Fatalf("recover Persist: %v", err)
	}
	return sp, st
}

func assertSameContent(t *testing.T, want, got *Space) {
	t.Helper()
	wm, wsz := want.ContentManifestSized()
	gm, gsz := got.ContentManifestSized()
	if !wm.Equal(gm) {
		t.Fatalf("manifests differ:\nwant %+v\ngot  %+v", wm.Entries, gm.Entries)
	}
	for i := range wsz {
		if wsz[i] != gsz[i] {
			t.Fatalf("entry %s@%d: %d bytes recovered, want %d",
				wm.Entries[i].Var, wm.Entries[i].Version, gsz[i], wsz[i])
		}
	}
	for _, e := range wm.Entries {
		wd, err := want.Get(e.Var, e.Version, dom())
		if err != nil {
			t.Fatalf("want.Get(%s@%d): %v", e.Var, e.Version, err)
		}
		gd, err := got.Get(e.Var, e.Version, dom())
		if err != nil {
			t.Fatalf("got.Get(%s@%d): %v", e.Var, e.Version, err)
		}
		if !wd.Equal(gd) {
			t.Fatalf("data for %s@%d differs after recovery", e.Var, e.Version)
		}
	}
}

func TestWALRecoverWithoutSnapshot(t *testing.T) {
	dir := t.TempDir()
	sp := persistSpace(t, dir)
	for i := int64(1); i <= 4; i++ {
		if err := sp.PutSeq("rho", 0, i, block(grid.IV(int(i)*8, 0, 0), 8, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := sp.PutSeq("t0/u", 1, 5, block(grid.IV(0, 8, 0), 8, 9)); err != nil {
		t.Fatal(err)
	}
	sp.CrashPersist()

	got, st := recoverSpace(t, dir)
	if st.TornTail || st.WALMissing || st.SnapshotBlocks != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Blocks != 5 {
		t.Fatalf("recovered %d blocks, want 5", st.Blocks)
	}
	assertSameContent(t, sp, got)
	// Tenant accounting is recomputed from the recovered objects.
	wb, wn := sp.TenantUsage("t0")
	gb, gn := got.TenantUsage("t0")
	if wb != gb || wn != gn {
		t.Fatalf("tenant usage: recovered (%d,%d), want (%d,%d)", gb, gn, wb, wn)
	}
}

func TestWALReplayIsIdempotentOnSeq(t *testing.T) {
	dir := t.TempDir()
	sp := persistSpace(t, dir)
	// The same logical put retried: one object, two WAL records.
	b := block(grid.IV(0, 0, 0), 8, 3)
	if err := sp.PutSeq("rho", 0, 7, b); err != nil {
		t.Fatal(err)
	}
	if err := sp.PutSeq("rho", 0, 7, b); err != nil {
		t.Fatal(err)
	}
	sp.CrashPersist()
	got, st := recoverSpace(t, dir)
	if st.WALRecords != 2 {
		t.Fatalf("replayed %d records, want 2", st.WALRecords)
	}
	if st.Blocks != 1 {
		t.Fatalf("recovered %d blocks, want 1 (seq replay must dedupe)", st.Blocks)
	}
	assertSameContent(t, sp, got)
}

func TestWALTornTailLosesOnlyUnsyncedSuffix(t *testing.T) {
	dir := t.TempDir()
	sp := persistSpace(t, dir)
	for i := int64(1); i <= 3; i++ {
		if err := sp.PutSeq("rho", 0, i, block(grid.IV(int(i)*8, 0, 0), 8, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	sp.CrashPersist()

	// A crash mid-append leaves a torn record: chop bytes off the tail so
	// the last put's record is incomplete.
	path := filepath.Join(dir, walFileName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-5], 0o666); err != nil {
		t.Fatal(err)
	}

	got, st := recoverSpace(t, dir)
	if !st.TornTail {
		t.Fatal("expected TornTail")
	}
	if st.Blocks != 2 {
		t.Fatalf("recovered %d blocks, want 2 (only the torn put lost)", st.Blocks)
	}
	// The truncated tail must not poison later appends + recovery.
	if err := got.PutSeq("rho", 0, 9, block(grid.IV(32, 0, 0), 8, 9)); err != nil {
		t.Fatal(err)
	}
	got.CrashPersist()
	again, st2 := recoverSpace(t, dir)
	if st2.TornTail || st2.Blocks != 3 {
		t.Fatalf("re-recovery stats = %+v, want 3 blocks and no torn tail", st2)
	}
	assertSameContent(t, got, again)
}

func TestWALClearAndDropReplay(t *testing.T) {
	dir := t.TempDir()
	sp := persistSpace(t, dir)
	sp.PutSeq("junk", 0, 1, block(grid.IV(0, 0, 0), 8, 1))
	sp.Clear()
	sp.PutSeq("rho", 0, 2, block(grid.IV(0, 0, 0), 8, 2))
	sp.PutSeq("rho", 1, 3, block(grid.IV(0, 0, 0), 8, 3))
	sp.PutSeq("rho", 2, 4, block(grid.IV(0, 0, 0), 8, 4))
	if freed := sp.DropBefore("rho", 2); freed == 0 {
		t.Fatal("DropBefore freed nothing")
	}
	sp.CrashPersist()

	got, st := recoverSpace(t, dir)
	if st.Blocks != 1 {
		t.Fatalf("recovered %d blocks, want 1 (clear and drop must replay)", st.Blocks)
	}
	if _, err := got.Get("junk", 0, dom()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cleared var survived recovery: %v", err)
	}
	if _, err := got.Get("rho", 1, dom()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("dropped version survived recovery: %v", err)
	}
	assertSameContent(t, sp, got)
}

func TestWALCompactionRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sp := persistSpace(t, dir)
	for i := int64(1); i <= 4; i++ {
		sp.PutSeq("rho", 0, i, block(grid.IV(int(i)*8, 0, 0), 8, float64(i)))
	}
	if err := sp.CompactWAL(); err != nil {
		t.Fatalf("CompactWAL: %v", err)
	}
	if st := sp.WALStats(); st.Epoch != 1 || st.Snapshots != 1 {
		t.Fatalf("after compaction stats = %+v", st)
	}
	// Post-snapshot suffix lands in the new epoch's WAL.
	sp.PutSeq("u", 1, 5, block(grid.IV(0, 8, 0), 8, 7))
	sp.CrashPersist()

	got, st := recoverSpace(t, dir)
	if st.SnapshotBlocks != 4 || st.WALRecords != 1 || st.Blocks != 5 {
		t.Fatalf("stats = %+v, want 4 snapshot blocks + 1 replayed record", st)
	}
	assertSameContent(t, sp, got)
}

func TestWALAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	sp := persistSpace(t, dir)
	sp.dur.compactEvery = 8
	for i := int64(1); i <= 20; i++ {
		if err := sp.PutSeq("rho", int(i), i, block(grid.IV(0, 0, 0), 4, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	st := sp.WALStats()
	if st.Snapshots == 0 {
		t.Fatalf("no automatic compaction after 20 records: %+v", st)
	}
	sp.CrashPersist()
	got, _ := recoverSpace(t, dir)
	assertSameContent(t, sp, got)
}

func TestSnapshotWithoutWALRecovers(t *testing.T) {
	dir := t.TempDir()
	sp := persistSpace(t, dir)
	sp.PutSeq("rho", 0, 1, block(grid.IV(0, 0, 0), 8, 1))
	if err := sp.CompactWAL(); err != nil {
		t.Fatal(err)
	}
	sp.CrashPersist()
	if err := os.Remove(filepath.Join(dir, walFileName)); err != nil {
		t.Fatal(err)
	}
	got, st := recoverSpace(t, dir)
	if !st.WALMissing || st.Blocks != 1 {
		t.Fatalf("stats = %+v, want WALMissing with 1 block", st)
	}
	// The fresh WAL starts past the snapshot's epoch and keeps working.
	if err := got.PutSeq("rho", 0, 2, block(grid.IV(8, 0, 0), 8, 2)); err != nil {
		t.Fatal(err)
	}
	got.CrashPersist()
	again, st2 := recoverSpace(t, dir)
	if st2.Blocks != 2 {
		t.Fatalf("re-recovery got %d blocks, want 2", st2.Blocks)
	}
	assertSameContent(t, got, again)
}

func TestPartialSnapshotFailsClosed(t *testing.T) {
	dir := t.TempDir()
	sp := persistSpace(t, dir)
	sp.PutSeq("rho", 0, 1, block(grid.IV(0, 0, 0), 8, 1))
	if err := sp.CompactWAL(); err != nil {
		t.Fatal(err)
	}
	sp.CrashPersist()
	// Snapshots are complete-or-absent by rename; a truncated one means
	// external corruption and recovery must refuse rather than guess.
	path := filepath.Join(dir, snapFileName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o666); err != nil {
		t.Fatal(err)
	}
	fresh := NewSpace(2, 0, dom())
	if _, err := fresh.Persist(dir, "s0"); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("Persist over torn snapshot = %v, want ErrBadSnapshot", err)
	}
}

func TestWALCrashBetweenSnapshotAndRotate(t *testing.T) {
	dir := t.TempDir()
	sp := persistSpace(t, dir)
	for i := int64(1); i <= 3; i++ {
		sp.PutSeq("rho", 0, i, block(grid.IV(int(i)*8, 0, 0), 8, float64(i)))
	}
	// Snapshot the epoch-0 WAL image, compact, then restore the old WAL:
	// exactly the on-disk state of a crash after the snapshot renamed but
	// before the WAL rotated. Recovery must skip the covered prefix.
	oldWAL, err := os.ReadFile(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.CompactWAL(); err != nil {
		t.Fatal(err)
	}
	sp.CrashPersist()
	if err := os.WriteFile(filepath.Join(dir, walFileName), oldWAL, 0o666); err != nil {
		t.Fatal(err)
	}
	got, st := recoverSpace(t, dir)
	if st.SnapshotBlocks != 3 || st.WALRecords != 0 || st.Blocks != 3 {
		t.Fatalf("stats = %+v, want snapshot-only recovery", st)
	}
	assertSameContent(t, sp, got)
}

func TestWALServerIdentityMismatch(t *testing.T) {
	dir := t.TempDir()
	sp := persistSpace(t, dir)
	sp.PutSeq("rho", 0, 1, block(grid.IV(0, 0, 0), 8, 1))
	sp.CrashPersist()
	fresh := NewSpace(2, 0, dom())
	if _, err := fresh.Persist(dir, "s1"); !errors.Is(err, ErrWALMismatch) {
		t.Fatalf("Persist under wrong id = %v, want ErrWALMismatch", err)
	}
}

func TestClosePersistThenRecover(t *testing.T) {
	dir := t.TempDir()
	sp := persistSpace(t, dir)
	sp.PutSeq("rho", 0, 1, block(grid.IV(0, 0, 0), 8, 1))
	if err := sp.ClosePersist(); err != nil {
		t.Fatalf("ClosePersist: %v", err)
	}
	if sp.Persisted() {
		t.Fatal("still persisted after ClosePersist")
	}
	got, st := recoverSpace(t, dir)
	if st.Blocks != 1 {
		t.Fatalf("recovered %d blocks, want 1", st.Blocks)
	}
	assertSameContent(t, sp, got)
}
