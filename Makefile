# Development entry points. `make check` is the full pre-merge gate.

GO ?= go
FUZZTIME ?= 10s

.PHONY: check build test vet staticcheck race fuzz chaos cover clean

check: vet staticcheck build race fuzz

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# staticcheck runs when the binary is on PATH (CI installs it); locally it
# is optional, so a bare toolchain still passes `make check`.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short deterministic fuzz passes over the wire codec and the server's
# request loop (one target per invocation, as the fuzz engine requires).
# FuzzSpanWireHeader covers the trace-context request-header extension
# (decode∘encode identity); the span-log golden test runs under `race`.
# FuzzTenantKey pins the tenant-namespace codec: hostile tenant ids are
# rejected, never mangled into another tenant's key space.
# FuzzStagingWAL / FuzzStagingSnapshot hammer the durability layer's
# recovery scanners with hostile and truncated images: accepted inputs
# must satisfy the recover∘replay identity, everything else is rejected
# without panicking.
fuzz:
	$(GO) test ./internal/staging -run '^$$' -fuzz FuzzDecodeBlock -fuzztime $(FUZZTIME)
	$(GO) test ./internal/staging -run '^$$' -fuzz FuzzReadRequest -fuzztime $(FUZZTIME)
	$(GO) test ./internal/staging -run '^$$' -fuzz FuzzPoolManifest -fuzztime $(FUZZTIME)
	$(GO) test ./internal/staging -run '^$$' -fuzz FuzzSpanWireHeader -fuzztime $(FUZZTIME)
	$(GO) test ./internal/staging -run '^$$' -fuzz FuzzTenantKey -fuzztime $(FUZZTIME)
	$(GO) test ./internal/staging -run '^$$' -fuzz FuzzStagingWAL -fuzztime $(FUZZTIME)
	$(GO) test ./internal/staging -run '^$$' -fuzz FuzzStagingSnapshot -fuzztime $(FUZZTIME)
	$(GO) test ./internal/spec -run '^$$' -fuzz FuzzSpecParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/journal -run '^$$' -fuzz FuzzJournal -fuzztime $(FUZZTIME)

# A seeded chaos sweep over the replicated pool + engine with all
# cross-layer invariants armed; any violation shrinks to a repro under
# CHAOS_OUT and fails the target.
CHAOS_SEEDS ?= 25
CHAOS_OUT ?= chaos-repros
chaos:
	$(GO) run ./cmd/xlayer chaos -seeds $(CHAOS_SEEDS) -steps 8 -out $(CHAOS_OUT)

# Coverage summary for the CI artifact: per-function table plus the total.
cover:
	$(GO) test ./... -count=1 -coverprofile=coverage.out -covermode=atomic
	$(GO) tool cover -func=coverage.out | tee coverage-summary.txt

clean:
	$(GO) clean ./...
