# Development entry points. `make check` is the full pre-merge gate.

GO ?= go
FUZZTIME ?= 10s

.PHONY: check build test vet race fuzz clean

check: vet build race fuzz

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short deterministic fuzz passes over the wire codec and the server's
# request loop (one target per invocation, as the fuzz engine requires).
fuzz:
	$(GO) test ./internal/staging -run '^$$' -fuzz FuzzDecodeBlock -fuzztime $(FUZZTIME)
	$(GO) test ./internal/staging -run '^$$' -fuzz FuzzReadRequest -fuzztime $(FUZZTIME)

clean:
	$(GO) clean ./...
