# Development entry points. `make check` is the full pre-merge gate.

GO ?= go
FUZZTIME ?= 10s

.PHONY: check build test vet staticcheck race fuzz clean

check: vet staticcheck build race fuzz

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# staticcheck runs when the binary is on PATH (CI installs it); locally it
# is optional, so a bare toolchain still passes `make check`.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short deterministic fuzz passes over the wire codec and the server's
# request loop (one target per invocation, as the fuzz engine requires).
fuzz:
	$(GO) test ./internal/staging -run '^$$' -fuzz FuzzDecodeBlock -fuzztime $(FUZZTIME)
	$(GO) test ./internal/staging -run '^$$' -fuzz FuzzReadRequest -fuzztime $(FUZZTIME)
	$(GO) test ./internal/staging -run '^$$' -fuzz FuzzPoolManifest -fuzztime $(FUZZTIME)

clean:
	$(GO) clean ./...
